#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/exec_context.h"
#include "cost/optimizer_cost_model.h"
#include "exec/query_executor.h"

namespace gbmqo {
namespace {

TablePtr MakeTable(int rows) {
  TableBuilder b(Schema({{"g", DataType::kInt64, false},
                         {"w", DataType::kString, false},
                         {"x", DataType::kDouble, false}}));
  Rng rng(9);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(16))),
                             Value("s" + std::to_string(rng.Uniform(8))),
                             Value(rng.NextDouble())})
                    .ok());
  }
  return *b.Build("t");
}

TEST(ScanModeTest, ResultsIdenticalAcrossModes) {
  TablePtr t = MakeTable(5000);
  GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  ExecContext c1, c2;
  auto a = QueryExecutor(&c1, ScanMode::kRowStore).ExecuteGroupBy(*t, q, "a");
  auto b = QueryExecutor(&c2, ScanMode::kColumnar).ExecuteGroupBy(*t, q, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->num_rows(), (*b)->num_rows());
}

TEST(ScanModeTest, RowStoreTouchesChecksum) {
  TablePtr t = MakeTable(1000);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  ExecContext row_ctx, col_ctx;
  ASSERT_TRUE(QueryExecutor(&row_ctx, ScanMode::kRowStore)
                  .ExecuteGroupBy(*t, q, "a")
                  .ok());
  ASSERT_TRUE(QueryExecutor(&col_ctx, ScanMode::kColumnar)
                  .ExecuteGroupBy(*t, q, "b")
                  .ok());
  EXPECT_NE(row_ctx.counters().scan_touch_checksum, 0u);
  EXPECT_EQ(col_ctx.counters().scan_touch_checksum, 0u);
}

TEST(ScanModeTest, WorkBytesIndependentOfMode) {
  // The deterministic byte accounting models a row store in both modes —
  // only the physical touching differs.
  TablePtr t = MakeTable(2000);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  ExecContext c1, c2;
  ASSERT_TRUE(
      QueryExecutor(&c1, ScanMode::kRowStore).ExecuteGroupBy(*t, q, "a").ok());
  ASSERT_TRUE(
      QueryExecutor(&c2, ScanMode::kColumnar).ExecuteGroupBy(*t, q, "b").ok());
  EXPECT_EQ(c1.counters().bytes_scanned, c2.counters().bytes_scanned);
}

TEST(AggCpuModelTest, PenaltyGrowsAndSaturates) {
  EXPECT_LT(HashAggCpuPerRow(10), HashAggCpuPerRow(100000));
  EXPECT_LT(HashAggCpuPerRow(100000), HashAggCpuPerRow(10000000));
  // Saturation: doubling an already-huge group count barely changes it.
  EXPECT_NEAR(HashAggCpuPerRow(5e7), HashAggCpuPerRow(1e8), 10.0);
  // Floor: tiny group counts cost the base CPU.
  EXPECT_NEAR(HashAggCpuPerRow(1), 4.0, 0.1);
}

TEST(AggCpuModelTest, HighCardinalityQueryCostsMoreWorkUnits) {
  // Same input rows, different group counts -> different agg_cpu_units.
  // `hi` draws sparse 64-bit codes so its domain is too wide for the dense
  // kernel and the cardinality ramp applies; `lo` (4 values) runs dense.
  TableBuilder b(Schema({{"lo", DataType::kInt64, false},
                         {"hi", DataType::kInt64, false}}));
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(4))),
                             Value(static_cast<int64_t>(rng.Next()))})
                    .ok());
  }
  TablePtr t = *b.Build("t");
  ExecContext lo_ctx, hi_ctx;
  GroupByQuery lo{ColumnSet{0}, {AggregateSpec::CountStar()}};
  GroupByQuery hi{ColumnSet{1}, {AggregateSpec::CountStar()}};
  ASSERT_TRUE(QueryExecutor(&lo_ctx).ExecuteGroupBy(*t, lo, "a").ok());
  ASSERT_TRUE(QueryExecutor(&hi_ctx).ExecuteGroupBy(*t, hi, "b").ok());
  EXPECT_GT(hi_ctx.counters().agg_cpu_units,
            2 * lo_ctx.counters().agg_cpu_units);
}

TEST(AggCpuModelTest, OptimizerModelMirrorsEngineCharge) {
  // QueryCost must grow with the child's estimated cardinality through the
  // same kernel-aware AggCpuPerRow ramp the engine charges. Column 0 (16
  // ints) predicts the flat dense kernel; column 2's doubles span a code
  // domain far past the dense budget, so its prediction keeps the
  // cache-miss ramp (packed kernel: the bit pattern still fits one word).
  TablePtr t = MakeTable(100);
  OptimizerCostModel model(*t);
  NodeDesc u{ColumnSet{0, 1, 2}, 100000, 24, false};
  NodeDesc small{ColumnSet{0}, 10, 16, false};
  NodeDesc large{ColumnSet{2}, 400000, 16, false};
  const double cheap = model.QueryCost(u, small);
  const double dear = model.QueryCost(u, large);
  EXPECT_GT(dear,
            cheap + 0.5 * 100000 *
                        (PackedAggCpuPerRow(400000) - kDenseArrayAggCpuPerRow));
}

}  // namespace
}  // namespace gbmqo
