// Out-of-core aggregation tests (exec/spill_partitioner.h + the
// QueryExecutor spill path + the api-level knobs).
//
// The determinism contract under test: a spilled run must be *bit-identical*
// to the uncapped in-memory run — same group order, same doubles compared on
// raw bits — because spill partitions coincide exactly with the in-memory
// merge partitions and records replay in shard scan order (see DESIGN.md
// "Out-of-core aggregation"). The suite drives seeded randomized
// differentials across every forced kernel x {1, 4, 8} workers, the
// budget-trip restart, the shared-scan refusal, StorageGovernor RAM/disk
// metering, spill-file cleanup after injected faults, and the Session-level
// spill knobs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "data/sales_gen.h"
#include "exec/group_hash_table.h"
#include "exec/query_executor.h"
#include "exec/spill_partitioner.h"
#include "storage/storage_governor.h"

namespace gbmqo {
namespace {

namespace fs = std::filesystem;

/// Fresh directory for one test's spill files, removed on scope exit so
/// leak checks from different tests cannot see each other's droppings.
class ScopedSpillDir {
 public:
  explicit ScopedSpillDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("gbmqo-spill-test-" + tag + "-" +
               std::to_string(static_cast<uint64_t>(::getpid())))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedSpillDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  size_t NumEntries() const {
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(path_)) {
      (void)e;
      ++n;
    }
    return n;
  }

 private:
  fs::path path_;
};

/// 150k rows (3 morsels, so the multi-shard build path — the only one that
/// can spill — is taken): a dense-eligible small dimension, a
/// high-cardinality key whose domain defeats the dense kernel, a dictionary
/// string, and numeric aggregate arguments.
TablePtr SpillTable(size_t rows, uint64_t seed) {
  TableBuilder b(Schema({{"g_small", DataType::kInt64, true},
                         {"g_big", DataType::kInt64, false},
                         {"g_str", DataType::kString, true},
                         {"v", DataType::kDouble, false},
                         {"w", DataType::kInt64, false}}));
  Rng rng(seed);
  const char* names[] = {"red", "green", "blue", ""};
  for (size_t i = 0; i < rows; ++i) {
    Value g1 = rng.Bernoulli(0.1)
                   ? Value(Null{})
                   : Value(static_cast<int64_t>(rng.Uniform(40)));
    Value g2 = Value(static_cast<int64_t>(rng.Uniform(500000)));
    Value g3 =
        rng.Bernoulli(0.1) ? Value(Null{}) : Value(names[rng.Uniform(4)]);
    Value v = Value(0.25 * static_cast<double>(rng.Uniform(1000)) - 17.3);
    Value w = Value(static_cast<int64_t>(rng.Uniform(1000)));
    EXPECT_TRUE(b.AppendRow({g1, g2, g3, v, w}).ok());
  }
  return *b.Build("spill_input");
}

TablePtr SharedSpillTable() {
  static TablePtr t = SpillTable(150000, 4242);
  return t;
}

/// Bit-identical table comparison: same schema, same row order, doubles
/// compared on their raw bit patterns (no tolerance, no canonicalization).
void ExpectBitIdentical(const Table& a, const Table& b,
                        const std::string& what) {
  ASSERT_EQ(a.schema().num_columns(), b.schema().num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (int c = 0; c < a.schema().num_columns(); ++c) {
    ASSERT_EQ(a.schema().column(c).type, b.schema().column(c).type) << what;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.column(c).IsNull(r), b.column(c).IsNull(r))
          << what << " col " << c << " row " << r;
      if (a.column(c).IsNull(r)) continue;
      if (a.schema().column(c).type == DataType::kDouble) {
        const double da = a.column(c).DoubleAt(r);
        const double db = b.column(c).DoubleAt(r);
        uint64_t ba, bb;
        std::memcpy(&ba, &da, sizeof(ba));
        std::memcpy(&bb, &db, sizeof(bb));
        ASSERT_EQ(ba, bb) << what << " col " << c << " row " << r;
      } else {
        ASSERT_EQ(a.column(c).ValueAt(r), b.column(c).ValueAt(r))
            << what << " col " << c << " row " << r;
      }
    }
  }
}

struct SpillRun {
  TablePtr table;
  WorkCounters counters;
  Status status = Status::OK();
};

SpillRun RunGroupBy(const Table& t, const GroupByQuery& q, int parallelism,
                    std::optional<AggKernel> kernel,
                    const SpillOptions& spill) {
  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, parallelism);
  exec.set_forced_kernel(kernel);
  exec.set_spill(spill);
  auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
  SpillRun out;
  out.counters = ctx.counters();
  if (r.ok()) {
    out.table = *r;
  } else {
    out.status = r.status();
  }
  return out;
}

const std::optional<AggKernel> kKernelMatrix[] = {
    std::nullopt, AggKernel::kDenseArray, AggKernel::kPackedKey,
    AggKernel::kMultiWord, AggKernel::kSortRuns};

// ---- forced spill vs in-memory, full kernel x parallelism matrix -----------

TEST(SpillDifferentialTest, ForcedSpillBitIdenticalAcrossKernelsAndThreads) {
  ScopedSpillDir dir("forced");
  TablePtr t = SharedSpillTable();
  const std::vector<GroupByQuery> queries = {
      {ColumnSet{0, 2},
       {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(3, "s"),
        AggregateSpec::Min(3, "mn"), AggregateSpec::Max(3, "mx")}},
      {ColumnSet{1}, {AggregateSpec::CountStar("cnt"),
                      AggregateSpec::Sum(3, "s")}},
  };
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE("query " + std::to_string(qi));
    for (std::optional<AggKernel> kernel : kKernelMatrix) {
      const std::string kname = kernel ? AggKernelName(*kernel) : "auto";
      SCOPED_TRACE("kernel " + kname);
      const SpillRun mem =
          RunGroupBy(*t, queries[qi], 1, kernel, SpillOptions{});
      ASSERT_TRUE(mem.status.ok()) << mem.status.ToString();
      EXPECT_EQ(mem.counters.queries_spilled, 0u);
      for (int par : {1, 4, 8}) {
        SCOPED_TRACE("par=" + std::to_string(par));
        SpillOptions spill;
        spill.force = true;
        spill.directory = dir.str();
        const SpillRun sp = RunGroupBy(*t, queries[qi], par, kernel, spill);
        ASSERT_TRUE(sp.status.ok()) << sp.status.ToString();
        ExpectBitIdentical(*mem.table, *sp.table, kname);
        EXPECT_EQ(sp.counters.queries_spilled, 1u);
        EXPECT_EQ(sp.counters.spill_partitions,
                  static_cast<uint64_t>(QueryExecutor::kMergePartitions));
        EXPECT_GT(sp.counters.spill_bytes_written, 0u);
        EXPECT_EQ(sp.counters.spill_bytes_written,
                  sp.counters.spill_bytes_read);
        // Scan-side counters are charged once, not per pass.
        EXPECT_EQ(sp.counters.rows_scanned, mem.counters.rows_scanned);
        EXPECT_EQ(sp.counters.rows_emitted, mem.counters.rows_emitted);
        EXPECT_EQ(sp.counters.scan_touch_checksum,
                  mem.counters.scan_touch_checksum);
      }
    }
  }
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";
}

TEST(SpillDifferentialTest, SeededRandomTrials) {
  ScopedSpillDir dir("random");
  TablePtr t = SharedSpillTable();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    ColumnSet cols;
    const int group_pool[] = {0, 1, 2};
    const size_t ncols = 1 + rng.Uniform(3);
    for (size_t c = 0; c < ncols; ++c) cols = cols.With(group_pool[rng.Uniform(3)]);
    GroupByQuery q;
    q.grouping = cols;
    q.aggregates = {AggregateSpec::CountStar("cnt")};
    if (rng.Uniform(2) == 0) q.aggregates.push_back(AggregateSpec::Sum(3, "s"));
    if (rng.Uniform(2) == 0) q.aggregates.push_back(AggregateSpec::Min(4, "mn"));
    if (rng.Uniform(3) == 0) q.aggregates.push_back(AggregateSpec::Max(3, "mx"));
    const std::optional<AggKernel> kernel =
        kKernelMatrix[rng.Uniform(std::size(kKernelMatrix))];
    const int par = 1 + static_cast<int>(rng.Uniform(8));

    const SpillRun mem = RunGroupBy(*t, q, 1, kernel, SpillOptions{});
    ASSERT_TRUE(mem.status.ok()) << mem.status.ToString();
    SpillOptions spill;
    spill.force = true;
    spill.directory = dir.str();
    const SpillRun sp = RunGroupBy(*t, q, par, kernel, spill);
    ASSERT_TRUE(sp.status.ok()) << sp.status.ToString();
    ExpectBitIdentical(*mem.table, *sp.table, "trial");
    EXPECT_EQ(sp.counters.queries_spilled, 1u);
  }
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";
}

// ---- budget trip: the in-memory build restarts on the spill path -----------

TEST(SpillTripTest, BudgetTripRestartsOnSpillPathBitIdentical) {
  ScopedSpillDir dir("trip");
  TablePtr t = SharedSpillTable();
  // ~130k distinct g_big groups: far past any 1 MiB group-table budget.
  GroupByQuery q{ColumnSet{1},
                 {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(3, "s")}};
  const SpillRun mem = RunGroupBy(*t, q, 4, std::nullopt, SpillOptions{});
  ASSERT_TRUE(mem.status.ok()) << mem.status.ToString();

  SpillOptions spill;
  spill.memory_budget_bytes = 1u << 20;
  spill.directory = dir.str();
  const SpillRun tripped = RunGroupBy(*t, q, 4, std::nullopt, spill);
  ASSERT_TRUE(tripped.status.ok()) << tripped.status.ToString();
  ExpectBitIdentical(*mem.table, *tripped.table, "tripped");
  EXPECT_EQ(tripped.counters.queries_spilled, 1u);
  // Upfront scan work is charged once even though the build restarted.
  EXPECT_EQ(tripped.counters.rows_scanned, mem.counters.rows_scanned);
  EXPECT_EQ(tripped.counters.queries_executed, mem.counters.queries_executed);

  // A budget the group table fits under never spills.
  SpillOptions roomy;
  roomy.memory_budget_bytes = 1u << 30;
  roomy.directory = dir.str();
  const SpillRun fit = RunGroupBy(*t, q, 4, std::nullopt, roomy);
  ASSERT_TRUE(fit.status.ok()) << fit.status.ToString();
  ExpectBitIdentical(*mem.table, *fit.table, "under-budget");
  EXPECT_EQ(fit.counters.queries_spilled, 0u);
  EXPECT_EQ(fit.counters.spill_bytes_written, 0u);
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";
}

TEST(SpillTripTest, SharedScanTripSurfacesRealizedVsBudgetedBytes) {
  // Shared scans cannot spill (their shard state interleaves queries): a
  // tripped budget must surface ResourceExhausted carrying the realized and
  // budgeted byte counts, for the plan-level ladder to split the batch.
  TablePtr t = SharedSpillTable();
  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, 4);
  SpillOptions spill;
  spill.memory_budget_bytes = 1u << 20;
  exec.set_spill(spill);
  const std::vector<GroupByQuery> queries = {
      {ColumnSet{1}, {AggregateSpec::CountStar("cnt")}},
      {ColumnSet{0, 2}, {AggregateSpec::CountStar("cnt")}},
  };
  auto r = exec.ExecuteSharedScan(*t, queries, {"a", "b"});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  const std::string msg = r.status().ToString();
  EXPECT_NE(msg.find("group-table memory exhausted: realized "),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find(" bytes exceeds the budget of 1048576 bytes"),
            std::string::npos)
      << msg;
}

// ---- StorageGovernor: RAM peak under the cap, disk bytes metered -----------

TEST(SpillGovernorTest, RamPeakStaysUnderBudgetAndDiskIsReleased) {
  ScopedSpillDir dir("governor");
  TablePtr t = SharedSpillTable();
  GroupByQuery q{ColumnSet{1},
                 {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(3, "s")}};
  StorageGovernor governor(/*budget_bytes=*/0, /*disk_budget_bytes=*/0);
  SpillOptions spill;
  spill.memory_budget_bytes = 2u << 20;
  spill.directory = dir.str();
  spill.governor = &governor;
  const SpillRun sp = RunGroupBy(*t, q, 4, std::nullopt, spill);
  ASSERT_TRUE(sp.status.ok()) << sp.status.ToString();
  EXPECT_EQ(sp.counters.queries_spilled, 1u);
  // The whole point of spilling: the replay's realized RAM working set (one
  // partition at a time) stays under the budget that the in-memory build
  // blew through — asserted on the governor's high-water mark.
  EXPECT_GT(governor.peak_reserved(), 0.0);
  EXPECT_LE(governor.peak_reserved(),
            static_cast<double>(spill.memory_budget_bytes));
  // Disk bytes were metered while files were live and fully released.
  EXPECT_EQ(governor.peak_disk_reserved(),
            static_cast<double>(sp.counters.spill_bytes_written));
  EXPECT_EQ(governor.disk_reserved(), 0.0);
  EXPECT_EQ(governor.reserved(), 0.0);
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";
}

TEST(SpillGovernorTest, DiskBudgetExhaustionFailsWithNumbers) {
  ScopedSpillDir dir("diskcap");
  TablePtr t = SharedSpillTable();
  GroupByQuery q{ColumnSet{1}, {AggregateSpec::CountStar("cnt")}};
  // Per-query spill-byte cap.
  SpillOptions spill;
  spill.force = true;
  spill.directory = dir.str();
  spill.max_spill_bytes = 1024;
  const SpillRun capped = RunGroupBy(*t, q, 4, std::nullopt, spill);
  ASSERT_FALSE(capped.status.ok());
  EXPECT_TRUE(capped.status.IsResourceExhausted());
  const std::string msg = capped.status.ToString();
  EXPECT_NE(msg.find("spill disk budget exhausted: realized "),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find(" bytes exceeds max_spill_bytes of 1024 bytes"),
            std::string::npos)
      << msg;
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";

  // Global governor disk ledger, same refusal shape.
  StorageGovernor governor(0, /*disk_budget_bytes=*/2048);
  SpillOptions global = spill;
  global.max_spill_bytes = 0;
  global.governor = &governor;
  const SpillRun gcapped = RunGroupBy(*t, q, 4, std::nullopt, global);
  ASSERT_FALSE(gcapped.status.ok());
  EXPECT_TRUE(gcapped.status.IsResourceExhausted());
  EXPECT_NE(gcapped.status.ToString().find("global spill disk budget"),
            std::string::npos)
      << gcapped.status.ToString();
  EXPECT_EQ(governor.disk_reserved(), 0.0);
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";
}

// ---- fault injection: no leaked spill files, ever ---------------------------

TEST(SpillFaultTest, InjectedFaultsLeakNoSpillFiles) {
  ScopedSpillDir dir("faults");
  TablePtr t = SharedSpillTable();
  GroupByQuery q{ColumnSet{1}, {AggregateSpec::CountStar("cnt")}};
  for (FaultSite site :
       {FaultSite::kSpillWrite, FaultSite::kSpillRead, FaultSite::kSpillMerge}) {
    SCOPED_TRACE(FaultSiteName(site));
    FaultInjector injector(99);
    injector.ArmProbability(site, 1.0);
    ScopedFaultInjection scoped(&injector);
    SpillOptions spill;
    spill.force = true;
    spill.directory = dir.str();
    const SpillRun sp = RunGroupBy(*t, q, 4, std::nullopt, spill);
    ASSERT_FALSE(sp.status.ok());
    EXPECT_TRUE(sp.status.IsInternal()) << sp.status.ToString();
    EXPECT_GT(injector.fires(site), 0u);
    // The RAII spill directory must be gone even though the run died
    // mid-write / mid-replay / mid-merge.
    EXPECT_EQ(dir.NumEntries(), 0u)
        << "leaked spill files after " << FaultSiteName(site);
  }
}

// ---- error-message pins (status reporting satellite) ------------------------

TEST(SpillMessageTest, ExhaustionMessagesReportRealizedVsBudgeted) {
  const SpillRequired trip(123456, 4567);
  EXPECT_EQ(std::string(trip.what()),
            "group-table memory exhausted: realized 123456 bytes exceeds the "
            "budget of 4567 bytes");
  EXPECT_EQ(trip.realized_bytes(), 123456u);
  EXPECT_EQ(trip.budget_bytes(), 4567u);
  const GroupIdSpaceExhausted ids(10, 5);
  EXPECT_EQ(std::string(ids.what()),
            "group id space exhausted: realized 10 groups at the id limit of 5");
}

TEST(SpillMessageTest, MemoryMeterTripsOnlyPastBudget) {
  MemoryMeter meter(1000, /*trip=*/true);
  meter.Charge(600);
  meter.Charge(400);  // exactly at budget: no trip
  EXPECT_EQ(meter.used(), 1000u);
  EXPECT_THROW(meter.Charge(1), SpillRequired);
  MemoryMeter observer(1000, /*trip=*/false);
  observer.Charge(5000);
  observer.Charge(-2000);
  EXPECT_EQ(observer.used(), 3000u);
  EXPECT_EQ(observer.peak(), 5000u);  // peak survives the release
}

// ---- Session-level knobs ----------------------------------------------------

std::vector<GroupByRequest> SalesRequests() {
  std::vector<GroupByRequest> reqs;
  GroupByRequest a;
  a.columns = ColumnSet{kCustomerId};  // high cardinality: trips small caps
  a.aggs = {AggRequest{}, AggRequest{AggKind::kSum, kSalesQuantity}};
  GroupByRequest b;
  b.columns = ColumnSet{kRegion, kCategory};
  b.aggs = {AggRequest{}, AggRequest{AggKind::kMax, kUnitPrice}};
  reqs.push_back(std::move(a));
  reqs.push_back(std::move(b));
  return reqs;
}

void ExpectSameResults(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, table] : a.results) {
    ASSERT_TRUE(b.results.count(cols)) << cols.ToString();
    ExpectBitIdentical(*table, *b.results.at(cols), cols.ToString());
  }
}

TEST(SessionSpillTest, StorageCapBecomesHardCapWithSpillEnabled) {
  ScopedSpillDir dir("session");
  TablePtr sales = GenerateSales({.rows = 150000, .seed = 11});
  const std::vector<GroupByRequest> reqs = SalesRequests();

  SessionOptions uncapped;
  uncapped.parallelism = 4;
  Session a(sales, uncapped);
  auto ra = a.Execute(reqs);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  EXPECT_EQ(ra->counters.queries_spilled, 0u);

  // Same workload under a 1 MiB execution-storage cap with spill enabled:
  // must complete (the cap is hard, not a refusal) with bit-identical
  // results, via the out-of-core path.
  SessionOptions capped = uncapped;
  capped.max_exec_storage_bytes = 1 << 20;
  capped.max_spill_bytes = 1u << 30;
  capped.spill_directory = dir.str();
  Session b(sales, capped);
  auto rb = b.Execute(reqs);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ExpectSameResults(*ra, *rb);
  EXPECT_GT(rb->counters.queries_spilled, 0u);
  EXPECT_GT(rb->counters.spill_bytes_written, 0u);
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";

  // force_spill routes every eligible aggregation out of core even with no
  // caps configured at all.
  SessionOptions forced = uncapped;
  forced.force_spill = true;
  forced.spill_directory = dir.str();
  Session c(sales, forced);
  auto rc = c.Execute(reqs);
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  ExpectSameResults(*ra, *rc);
  EXPECT_GT(rc->counters.queries_spilled, 0u);
  EXPECT_EQ(dir.NumEntries(), 0u) << "leaked spill files";
}

}  // namespace
}  // namespace gbmqo
