#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/optimizer_cost_model.h"
#include "cost/whatif.h"
#include "exec/exec_context.h"

namespace gbmqo {
namespace {

TablePtr MakeBase(int rows) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"c", DataType::kString, false}}));
  Rng rng(5);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(10))),
                             Value(static_cast<int64_t>(rng.Uniform(100))),
                             Value("v" + std::to_string(rng.Uniform(7)))})
                    .ok());
  }
  return *b.Build("r");
}

NodeDesc Desc(ColumnSet cols, double rows, double width, bool root = false) {
  return NodeDesc{cols, rows, width, root};
}

TEST(CardinalityCostModelTest, EdgeCostIsParentRows) {
  CardinalityCostModel model;
  NodeDesc u = Desc(ColumnSet{0, 1}, 1000, 16);
  NodeDesc v = Desc(ColumnSet{0}, 10, 8);
  EXPECT_DOUBLE_EQ(model.QueryCost(u, v), 1000.0);
  EXPECT_DOUBLE_EQ(model.MaterializeCost(v), 0.0);
  EXPECT_EQ(model.optimizer_calls(), 1u);
}

TEST(OptimizerCostModelTest, SmallerParentIsCheaper) {
  TablePtr t = MakeBase(1000);
  OptimizerCostModel model(*t);
  NodeDesc root = Desc(ColumnSet{0, 1, 2}, 1000, 24, true);
  NodeDesc mid = Desc(ColumnSet{0, 1}, 50, 24);
  NodeDesc leaf = Desc(ColumnSet{0}, 10, 16);
  EXPECT_LT(model.QueryCost(mid, leaf), model.QueryCost(root, leaf));
}

TEST(OptimizerCostModelTest, MaterializeScalesWithBytes) {
  TablePtr t = MakeBase(100);
  OptimizerCostModel model(*t);
  NodeDesc small = Desc(ColumnSet{0}, 10, 16);
  NodeDesc large = Desc(ColumnSet{0, 1}, 1000, 24);
  EXPECT_LT(model.MaterializeCost(small), model.MaterializeCost(large));
  EXPECT_DOUBLE_EQ(model.MaterializeCost(small),
                   10 * 16 * model.params().materialize_byte);
}

TEST(OptimizerCostModelTest, CoveringIndexCheapensRootEdge) {
  TablePtr t = MakeBase(10000);
  OptimizerCostModel no_index(*t);
  NodeDesc root = Desc(ColumnSet{0, 1, 2}, 10000, t->AvgRowWidth({}), true);
  NodeDesc leaf = Desc(ColumnSet{0}, 10, 16);
  const double before = no_index.QueryCost(root, leaf);

  ASSERT_TRUE(t->CreateIndex(ColumnSet{0}).ok());
  OptimizerCostModel with_index(*t);
  const double after = with_index.QueryCost(root, leaf);
  EXPECT_LT(after, before);
}

TEST(OptimizerCostModelTest, IndexOnlyHelpsRootEdges) {
  TablePtr t = MakeBase(10000);
  ASSERT_TRUE(t->CreateIndex(ColumnSet{0}).ok());
  OptimizerCostModel model(*t);
  // Same column set but NOT the root: temp tables are heaps.
  NodeDesc temp = Desc(ColumnSet{0, 1, 2}, 10000, t->AvgRowWidth({}), false);
  NodeDesc leaf = Desc(ColumnSet{0}, 10, 16);
  const double via_temp = model.QueryCost(temp, leaf);
  NodeDesc root = temp;
  root.is_root = true;
  const double via_root = model.QueryCost(root, leaf);
  EXPECT_LT(via_root, via_temp);
}

TEST(OptimizerCostModelTest, CachingCountsDistinctCallsOnly) {
  TablePtr t = MakeBase(100);
  OptimizerCostModel model(*t);
  NodeDesc u = Desc(ColumnSet{0, 1}, 50, 16);
  NodeDesc v = Desc(ColumnSet{0}, 10, 16);
  model.QueryCost(u, v);
  model.QueryCost(u, v);
  model.QueryCost(u, v);
  EXPECT_EQ(model.optimizer_calls(), 1u);
  NodeDesc w = Desc(ColumnSet{1}, 10, 16);
  model.QueryCost(u, w);
  EXPECT_EQ(model.optimizer_calls(), 2u);
}

TEST(OptimizerCostModelTest, MonotoneInParentRows) {
  TablePtr t = MakeBase(100);
  OptimizerCostModel model(*t);
  NodeDesc v = Desc(ColumnSet{0}, 10, 16);
  double prev = 0;
  for (double rows : {100.0, 1000.0, 10000.0}) {
    NodeDesc u = Desc(ColumnSet{0, 1}, rows, 16);
    // Distinct cache keys: vary width marker via columns? Same columns →
    // cached. Use mask trick: different parent column sets.
    u.columns = ColumnSet(static_cast<uint64_t>(rows));
    const double c = model.QueryCost(u, v);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(OptimizerCostModelTest, SimdSpeedupDiscountsAggCpuByKernel) {
  // MakeBase columns a/b/c have tiny domains, so grouping {0} predicts the
  // dense kernel. With SimdAwareCostParams the dense aggregation CPU charge
  // is divided by simd_dense_speedup; scan, group-build, and materialize
  // charges are untouched. Pin the exact discount so the factors stay wired
  // through QueryCost.
  TablePtr t = MakeBase(1000);
  OptimizerCostModel scalar_model(*t);
  const CostParams simd_params = SimdAwareCostParams();
  OptimizerCostModel simd_model(*t, simd_params);
  ASSERT_GT(simd_params.simd_dense_speedup, 1.0);

  NodeDesc u = Desc(ColumnSet{0, 1}, 1000, 16);
  NodeDesc v = Desc(ColumnSet{0}, 10, 16);
  const double scalar_cost = scalar_model.QueryCost(u, v);
  const double simd_cost = simd_model.QueryCost(u, v);
  EXPECT_LT(simd_cost, scalar_cost);
  // The difference is exactly the dense agg-CPU charge's discount.
  const double agg = u.rows * AggCpuPerRow(AggKernel::kDenseArray, v.rows);
  EXPECT_DOUBLE_EQ(scalar_cost - simd_cost,
                   agg - agg / simd_params.simd_dense_speedup);

  // Default params price scalar execution: factors of 1.0 change nothing.
  const CostParams defaults;
  EXPECT_DOUBLE_EQ(defaults.simd_dense_speedup, 1.0);
  EXPECT_DOUBLE_EQ(defaults.simd_packed_speedup, 1.0);
  EXPECT_DOUBLE_EQ(defaults.simd_multiword_speedup, 1.0);

  // Materialization cost carries no CPU term, so it is tier-independent.
  EXPECT_DOUBLE_EQ(scalar_model.MaterializeCost(v),
                   simd_model.MaterializeCost(v));
}

TEST(OptimizerCostModelTest, SortCrossoverRepricesHighGroupEdges) {
  // One int64 column spanning 2^22 codes: dense-ineligible (past
  // kDenseSlotBudget) but packed-eligible, so the hash-vs-sort crossover
  // applies. An edge reading 2M rows estimates min(2M, 2^22) > the default
  // crossover (2^20) and is priced with the sort kernel; a model whose
  // crossover is pushed out of reach prices the same edge as packed
  // grace-hash. The gap is exactly the agg-CPU repricing.
  TableBuilder b(Schema({{"k", DataType::kInt64, false},
                         {"k2", DataType::kInt64, false}}));
  ASSERT_TRUE(b.AppendRow({Value(int64_t{0}), Value(int64_t{0})}).ok());
  ASSERT_TRUE(
      b.AppendRow({Value(int64_t{(1 << 22) - 1}), Value(int64_t{1})}).ok());
  TablePtr t = *b.Build("wide");

  OptimizerCostModel sort_model(*t);  // default sort_crossover_groups
  CostParams hash_only;
  hash_only.sort_crossover_groups = 1e18;
  OptimizerCostModel hash_model(*t, hash_only);
  ASSERT_GT(2e6, sort_model.params().sort_crossover_groups);

  NodeDesc u = Desc(ColumnSet{0}, 2e6, 8);
  NodeDesc v = Desc(ColumnSet{0}, 2e6, 8);
  const double sort_cost = sort_model.QueryCost(u, v);
  const double hash_cost = hash_model.QueryCost(u, v);
  EXPECT_LT(sort_cost, hash_cost);
  EXPECT_DOUBLE_EQ(hash_cost - sort_cost,
                   u.rows * (AggCpuPerRow(AggKernel::kPackedKey, v.rows) -
                             AggCpuPerRow(AggKernel::kSortRuns, v.rows)));

  // Below the crossover the two models agree: the edge stays grace-hash.
  // (Distinct column sets — QueryCost caches by the column-set pair.)
  NodeDesc small_u = Desc(ColumnSet{0, 1}, 1000, 16);
  NodeDesc small_v = Desc(ColumnSet{0, 1}, 100, 16);
  EXPECT_DOUBLE_EQ(sort_model.QueryCost(small_u, small_v),
                   hash_model.QueryCost(small_u, small_v));
}

TEST(OptimizerCostModelTest, SpillRegimePricesPartitionIO) {
  // With a spill RAM budget configured, an edge whose estimated group state
  // (v.rows * group_state_byte) exceeds the budget is priced with one extra
  // write + read of a 12-byte spill record per input row; edges whose
  // groups fit under the budget are untouched.
  TablePtr t = MakeBase(1000);
  OptimizerCostModel uncapped(*t);
  CostParams capped_params;
  capped_params.spill_ram_budget_bytes = 1000.0;
  OptimizerCostModel capped(*t, capped_params);

  NodeDesc u = Desc(ColumnSet{0, 1}, 1000, 16);
  NodeDesc big = Desc(ColumnSet{0}, 100, 16);  // 100 * 48 B > 1000 B budget
  ASSERT_GT(big.rows * capped_params.group_state_byte,
            capped_params.spill_ram_budget_bytes);
  EXPECT_DOUBLE_EQ(capped.QueryCost(u, big) - uncapped.QueryCost(u, big),
                   u.rows * 2.0 * 12.0 * capped_params.spill_byte);

  NodeDesc tiny = Desc(ColumnSet{1}, 10, 16);  // 10 * 48 B fits the budget
  ASSERT_LE(tiny.rows * capped_params.group_state_byte,
            capped_params.spill_ram_budget_bytes);
  EXPECT_DOUBLE_EQ(capped.QueryCost(u, tiny), uncapped.QueryCost(u, tiny));
}

TEST(WhatIfProviderTest, RootAndHypothetical) {
  TablePtr t = MakeBase(5000);
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  NodeDesc root = whatif.Root();
  EXPECT_TRUE(root.is_root);
  EXPECT_DOUBLE_EQ(root.rows, 5000.0);
  EXPECT_GT(root.row_width, 0.0);

  NodeDesc a = whatif.Describe(ColumnSet{0});
  EXPECT_FALSE(a.is_root);
  EXPECT_DOUBLE_EQ(a.rows, 10.0);  // column a has 10 distinct values
  EXPECT_GE(a.row_width, 8.0 + 8.0);  // key + one agg column

  // More carried aggregates widen the hypothetical row.
  NodeDesc a3 = whatif.Describe(ColumnSet{0}, 3);
  EXPECT_GT(a3.row_width, a.row_width);
}

TEST(WhatIfProviderTest, SupersetHasAtLeastSubsetCardinality) {
  TablePtr t = MakeBase(20000);
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  const double da = whatif.Describe(ColumnSet{0}).rows;
  const double dab = whatif.Describe(ColumnSet{0, 1}).rows;
  const double dabc = whatif.Describe(ColumnSet{0, 1, 2}).rows;
  EXPECT_GE(dab, da);
  EXPECT_GE(dabc, dab);
}

}  // namespace
}  // namespace gbmqo
