// End-to-end property sweeps: for random workloads over every dataset
// generator, any plan the optimizers produce must (a) validate, (b) execute,
// (c) return results identical to the naive plan, and (d) never exceed the
// naive plan's estimated cost. This is the repo's broadest invariant net.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/gbmqo.h"
#include "data/nref_gen.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

std::map<std::string, std::vector<double>> Flatten(const Table& t, int ng) {
  std::map<std::string, std::vector<double>> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < ng; ++c) key += t.column(c).ValueAt(row).ToString() + "|";
    std::vector<double> aggs;
    for (int c = ng; c < t.schema().num_columns(); ++c) {
      aggs.push_back(t.column(c).IsNull(row) ? -1e308 : t.column(c).NumericAt(row));
    }
    out[key] = std::move(aggs);
  }
  return out;
}

void ExpectSameResults(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, ta] : a.results) {
    const TablePtr& tb = b.results.at(cols);
    auto fa = Flatten(*ta, cols.size());
    auto fb = Flatten(*tb, cols.size());
    ASSERT_EQ(fa.size(), fb.size()) << cols.ToString();
    for (const auto& [key, aggs] : fa) {
      ASSERT_TRUE(fb.count(key)) << cols.ToString() << " " << key;
      ASSERT_EQ(aggs.size(), fb[key].size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        EXPECT_NEAR(aggs[i], fb[key][i], 1e-6 * (1 + std::abs(aggs[i])));
      }
    }
  }
}

enum class Dataset { kTpch, kSales, kNref };

struct Scenario {
  Dataset dataset;
  uint64_t seed;
  bool sampled_stats;
  bool binary_only;
};

class IntegrationTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(IntegrationTest, OptimizedPlanEquivalentToNaive) {
  const Scenario scenario = GetParam();
  TablePtr table;
  std::vector<int> pool;
  switch (scenario.dataset) {
    case Dataset::kTpch:
      table = GenerateLineitem({.rows = 6000, .seed = scenario.seed});
      pool = LineitemAnalysisColumns();
      break;
    case Dataset::kSales:
      table = GenerateSales({.rows = 6000, .seed = scenario.seed});
      pool = SalesAllColumns();
      break;
    case Dataset::kNref:
      table = GenerateNref({.rows = 6000, .seed = scenario.seed});
      pool = NrefAllColumns();
      break;
  }
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(table).ok());

  // Random workload: 5-8 random sets of 1-3 columns each (deduplicated).
  Rng rng(scenario.seed * 7 + 1);
  std::vector<GroupByRequest> requests;
  std::set<ColumnSet> seen;
  const int want = 5 + static_cast<int>(rng.Uniform(4));
  while (static_cast<int>(requests.size()) < want) {
    ColumnSet set;
    const int k = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < k; ++i) {
      set = set.With(pool[rng.Uniform(pool.size())]);
    }
    if (!seen.insert(set).second) continue;
    requests.push_back(GroupByRequest::Count(set));
  }

  StatisticsManager stats(*table,
                          scenario.sampled_stats ? DistinctMode::kSampled
                                                 : DistinctMode::kExact,
                          2000);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*table);
  OptimizerOptions opts;
  opts.only_type_b = scenario.binary_only;
  GbMqoOptimizer optimizer(&model, &whatif, opts);
  auto opt = optimizer.Optimize(requests);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ASSERT_TRUE(opt->plan.Validate(requests).ok());
  EXPECT_LE(opt->cost, opt->naive_cost + 1e-6);

  PlanExecutor exec(&catalog, table->name());
  auto naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(naive.ok());
  auto ours = exec.Execute(opt->plan, requests);
  ASSERT_TRUE(ours.ok()) << ours.status().ToString();
  ExpectSameResults(*naive, *ours);
  EXPECT_EQ(catalog.temp_bytes(), 0u) << "temp tables leaked";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntegrationTest,
    ::testing::Values(
        Scenario{Dataset::kTpch, 1, false, false},
        Scenario{Dataset::kTpch, 2, true, false},
        Scenario{Dataset::kTpch, 3, false, true},
        Scenario{Dataset::kSales, 4, false, false},
        Scenario{Dataset::kSales, 5, true, true},
        Scenario{Dataset::kNref, 6, false, false},
        Scenario{Dataset::kNref, 7, true, false},
        Scenario{Dataset::kTpch, 8, true, true},
        Scenario{Dataset::kSales, 9, false, true},
        Scenario{Dataset::kNref, 10, true, true}));

TEST(IntegrationTest, CardinalityModelAlsoExecutesCorrectly) {
  TablePtr table = GenerateLineitem({.rows = 5000, .seed = 77});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(table).ok());
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);
  CardinalityCostModel model;
  GbMqoOptimizer optimizer(&model, &whatif);
  auto opt = optimizer.Optimize(requests);
  ASSERT_TRUE(opt.ok());
  PlanExecutor exec(&catalog, table->name());
  auto naive = exec.Execute(NaivePlan(requests), requests);
  auto ours = exec.Execute(opt->plan, requests);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(ours.ok());
  ExpectSameResults(*naive, *ours);
}

TEST(IntegrationTest, SqlScriptMirrorsExecutedPlan) {
  // The SQL generator and the executor walk the same plan in the same
  // order: every temp table that appears in an INTO also gets a DROP, and
  // the number of SELECTs equals the number of plan edges.
  TablePtr table = GenerateLineitem({.rows = 3000, .seed = 5});
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  StatisticsManager stats(*table);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*table);
  GbMqoOptimizer optimizer(&model, &whatif);
  auto opt = optimizer.Optimize(requests);
  ASSERT_TRUE(opt.ok());

  SqlGenerator gen("lineitem", table->schema());
  auto stmts = gen.Generate(opt->plan);
  ASSERT_TRUE(stmts.ok());
  int selects = 0, intos = 0, drops = 0;
  for (const SqlStatement& s : *stmts) {
    switch (s.kind) {
      case SqlStatement::Kind::kSelect: ++selects; break;
      case SqlStatement::Kind::kSelectInto: ++intos; ++selects; break;
      case SqlStatement::Kind::kDropTable: ++drops; break;
    }
  }
  EXPECT_EQ(intos, drops) << "unbalanced temp-table lifecycle";
  EXPECT_EQ(selects, opt->plan.NumNodes());
}

}  // namespace
}  // namespace gbmqo
