// Unit suite for the cross-request AggregateCache: LRU eviction order,
// refresh-in-place (ReplaceEntry) vs whole-cache invalidation, ref-count
// pinning across evictions, and — the accounting contract the rest of the
// serving layer leans on — every byte charged to the StorageGovernor is
// returned on every exit path (eviction, refresh shrinkage, Invalidate,
// Clear, destructor), so a dropped cache leaves the governor balance at
// exactly zero.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/aggregate_cache.h"
#include "storage/catalog.h"
#include "storage/storage_governor.h"
#include "storage/table.h"

namespace gbmqo {
namespace {

/// A synthetic "aggregate" table of `rows` int64 rows. The cache never
/// inspects entry contents — only ByteSize() — so one non-null INT64 column
/// gives precise, linear control over entry bytes.
TablePtr MakeTable(const std::string& name, size_t rows) {
  TableBuilder b(Schema({{"cnt", DataType::kInt64, false}}));
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(b.AppendRow({Value(static_cast<int64_t>(i))}).ok());
  }
  auto t = b.Build(name);
  EXPECT_TRUE(t.ok());
  return *t;
}

const std::vector<AggRequest> kCountStar = {AggRequest{}};

TEST(AggregateCacheTest, LruEvictionOrder) {
  Catalog catalog;
  const TablePtr t = MakeTable("probe", 100);
  const uint64_t unit = t->ByteSize();
  AggregateCache cache(&catalog, 3.0 * unit);

  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                 MakeTable("t0", 100), false));
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(1), kCountStar,
                                 MakeTable("t1", 100), false));
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(2), kCountStar,
                                 MakeTable("t2", 100), false));
  // Touch entry 0 — it becomes MRU, leaving entry 1 as the LRU victim.
  ASSERT_NE(cache.Lookup(ColumnSet::Single(0), kCountStar, 0), nullptr);

  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(3), kCountStar,
                                 MakeTable("t3", 100), false));
  EXPECT_EQ(cache.Lookup(ColumnSet::Single(1), kCountStar, 0), nullptr);
  EXPECT_NE(cache.Lookup(ColumnSet::Single(0), kCountStar, 0), nullptr);
  EXPECT_NE(cache.Lookup(ColumnSet::Single(2), kCountStar, 0), nullptr);
  EXPECT_NE(cache.Lookup(ColumnSet::Single(3), kCountStar, 0), nullptr);

  const AggregateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.pinned_bytes, 3 * unit);
}

TEST(AggregateCacheTest, DuplicateKeyAndZeroBudgetDeclined) {
  Catalog catalog;
  AggregateCache cache(&catalog, 1.0 * 1024 * 1024);
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                 MakeTable("t0", 10), false));
  // Same key, different table: declined, the live entry keeps serving.
  EXPECT_FALSE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                  MakeTable("t0b", 20), false));
  EXPECT_EQ(cache.stats().declined, 1u);

  AggregateCache disabled(&catalog, 0);
  EXPECT_FALSE(disabled.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                     MakeTable("t0c", 10), false));
  EXPECT_EQ(disabled.Lookup(ColumnSet::Single(0), kCountStar, 0), nullptr);
}

TEST(AggregateCacheTest, InvalidateBumpsVersionAndDropsEverything) {
  Catalog catalog;
  StorageGovernor governor(0);
  AggregateCache cache(&catalog, 1.0 * 1024 * 1024, &governor);
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                 MakeTable("t0", 50), false));
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(1), kCountStar,
                                 MakeTable("t1", 50), false));
  EXPECT_GT(governor.reserved(), 0.0);

  cache.Invalidate();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.pinned_bytes(), 0u);
  EXPECT_EQ(governor.reserved(), 0.0);
  EXPECT_EQ(cache.Lookup(ColumnSet::Single(0), kCountStar, 0), nullptr);
  // The pre-invalidation key can be re-admitted under the new version.
  EXPECT_TRUE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                 MakeTable("t0v2", 50), false));
  EXPECT_NE(cache.Lookup(ColumnSet::Single(0), kCountStar, 0), nullptr);
}

TEST(AggregateCacheTest, ReplaceEntryRefreshesInPlace) {
  Catalog catalog;
  StorageGovernor governor(0);
  AggregateCache cache(&catalog, 1.0 * 1024 * 1024, &governor);
  const ColumnSet key = ColumnSet::Single(0);
  ASSERT_TRUE(cache.AcceptPinned(key, kCountStar, MakeTable("gen0", 100),
                                 false));
  const uint64_t old_bytes = cache.pinned_bytes();

  // Grow. The key — and therefore every warm hit — survives; only the
  // pinned table and the byte accounting move.
  const TablePtr grown = MakeTable("gen1", 300);
  ASSERT_TRUE(cache.ReplaceEntry(key, kCountStar, grown, false, 1));
  EXPECT_EQ(cache.Lookup(key, kCountStar, 0), grown);
  EXPECT_EQ(cache.pinned_bytes(), grown->ByteSize());
  EXPECT_GT(cache.pinned_bytes(), old_bytes);
  EXPECT_EQ(governor.reserved(), static_cast<double>(cache.pinned_bytes()));
  // The old generation's pin is gone from the catalog.
  EXPECT_FALSE(catalog.Exists("gen0"));

  // Shrink: the difference is returned to the governor.
  const TablePtr shrunk = MakeTable("gen2", 50);
  ASSERT_TRUE(cache.ReplaceEntry(key, kCountStar, shrunk, false, 2));
  EXPECT_EQ(cache.pinned_bytes(), shrunk->ByteSize());
  EXPECT_EQ(governor.reserved(), static_cast<double>(cache.pinned_bytes()));

  const AggregateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.refreshes, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  const auto entries = cache.SnapshotEntriesForRefresh();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].source_version, 2u);
}

TEST(AggregateCacheTest, ReplaceEntryEvictsOthersButNeverItself) {
  Catalog catalog;
  const uint64_t unit = MakeTable("probe", 100)->ByteSize();
  AggregateCache cache(&catalog, 3.0 * unit);
  const ColumnSet victim = ColumnSet::Single(0);
  const ColumnSet target = ColumnSet::Single(1);
  ASSERT_TRUE(cache.AcceptPinned(victim, kCountStar, MakeTable("v", 100),
                                 false));
  ASSERT_TRUE(cache.AcceptPinned(target, kCountStar, MakeTable("t", 100),
                                 false));

  // Growing the target to 2.5 units needs the victim's unit back — the
  // victim is evicted, the refreshed entry survives.
  ASSERT_TRUE(
      cache.ReplaceEntry(target, kCountStar, MakeTable("t2", 250), false, 1));
  EXPECT_EQ(cache.Lookup(victim, kCountStar, 0), nullptr);
  EXPECT_NE(cache.Lookup(target, kCountStar, 0), nullptr);

  // Growing past the whole budget cannot succeed; the stale entry must not
  // keep serving, so it is evicted and the cache ends empty — with zero
  // retained bytes.
  EXPECT_FALSE(
      cache.ReplaceEntry(target, kCountStar, MakeTable("t3", 400), false, 2));
  EXPECT_EQ(cache.Lookup(target, kCountStar, 0), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.pinned_bytes(), 0u);
}

TEST(AggregateCacheTest, LookupRefsKeepTableAlivePastEviction) {
  Catalog catalog;
  AggregateCache cache(&catalog, 1.0 * 1024 * 1024);
  const ColumnSet key = ColumnSet::Single(0);
  ASSERT_TRUE(cache.AcceptPinned(key, kCountStar, MakeTable("pinned", 100),
                                 false));

  // A reader takes its own catalog reference atomically with the lookup...
  TablePtr held = cache.Lookup(key, kCountStar, /*add_refs=*/1);
  ASSERT_NE(held, nullptr);
  // ...so eviction only drops the cache's pin: the table stays registered
  // for the in-flight reader.
  ASSERT_TRUE(cache.Evict(key, kCountStar));
  EXPECT_TRUE(catalog.Exists("pinned"));
  EXPECT_EQ(cache.Lookup(key, kCountStar, 0), nullptr);

  // The reader's release is the last reference — now it is gone.
  auto dropped = catalog.ReleaseTempRef("pinned");
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(*dropped);
  EXPECT_FALSE(catalog.Exists("pinned"));
}

TEST(AggregateCacheTest, NeedsRecomputeFlagIsPerEntryAndOneShot) {
  Catalog catalog;
  AggregateCache cache(&catalog, 1.0 * 1024 * 1024);
  const ColumnSet a = ColumnSet::Single(0);
  const ColumnSet b = ColumnSet::Single(1);
  ASSERT_TRUE(cache.AcceptPinned(a, kCountStar, MakeTable("a", 10), false));
  ASSERT_TRUE(cache.AcceptPinned(b, kCountStar, MakeTable("b", 10), false));

  cache.MarkNeedsRecompute(a, kCountStar);
  cache.MarkNeedsRecompute(ColumnSet::Single(7), kCountStar);  // no-op

  auto entries = cache.SnapshotEntriesForRefresh();
  ASSERT_EQ(entries.size(), 2u);
  for (const RefreshableEntry& e : entries) {
    EXPECT_EQ(e.needs_recompute, e.columns == a) << e.columns.ToString();
  }

  // A successful refresh clears the flag.
  ASSERT_TRUE(cache.ReplaceEntry(a, kCountStar, MakeTable("a2", 10), false, 1));
  entries = cache.SnapshotEntriesForRefresh();
  for (const RefreshableEntry& e : entries) {
    EXPECT_FALSE(e.needs_recompute);
  }
}

// Satellite regression: Clear() (and the destructor, which calls it) must
// return every pinned byte to the governor — a dropped cache leaves the
// shared storage pool balance at exactly zero.
TEST(AggregateCacheTest, ClearAndDestructorReturnAllGovernorBytes) {
  Catalog catalog;
  StorageGovernor governor(0);
  {
    AggregateCache cache(&catalog, 1.0 * 1024 * 1024, &governor);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(i), kCountStar,
                                     MakeTable("t" + std::to_string(i), 100),
                                     false));
    }
    EXPECT_EQ(governor.reserved(), static_cast<double>(cache.pinned_bytes()));
    EXPECT_GT(governor.reserved(), 0.0);

    cache.Clear();
    EXPECT_EQ(governor.reserved(), 0.0);
    EXPECT_EQ(cache.pinned_bytes(), 0u);
    EXPECT_EQ(catalog.temp_bytes(), 0u);

    // Refill, then let the destructor do the clearing.
    ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                   MakeTable("again", 200), false));
    EXPECT_GT(governor.reserved(), 0.0);
  }
  EXPECT_EQ(governor.reserved(), 0.0);
  EXPECT_EQ(catalog.temp_bytes(), 0u);
}

TEST(AggregateCacheTest, GovernorContentionEvictsLruToAdmit) {
  Catalog catalog;
  const uint64_t unit = MakeTable("probe", 100)->ByteSize();
  // Governor tighter than the cache's own budget: 2 units vs 10.
  StorageGovernor governor(2.0 * unit);
  AggregateCache cache(&catalog, 10.0 * unit, &governor);
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(0), kCountStar,
                                 MakeTable("t0", 100), false));
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(1), kCountStar,
                                 MakeTable("t1", 100), false));
  // No governor headroom: the cache evicts its own LRU (entry 0) to admit.
  ASSERT_TRUE(cache.AcceptPinned(ColumnSet::Single(2), kCountStar,
                                 MakeTable("t2", 100), false));
  EXPECT_EQ(cache.Lookup(ColumnSet::Single(0), kCountStar, 0), nullptr);
  EXPECT_NE(cache.Lookup(ColumnSet::Single(1), kCountStar, 0), nullptr);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(governor.reserved(), static_cast<double>(cache.pinned_bytes()));

  // An offer the governor can never grant — an external reservation holds
  // most of the pool, and the cache has nothing of its own left to evict —
  // is declined, and the failed admission leaks nothing.
  cache.Clear();
  ASSERT_TRUE(governor.TryReserve(1.5 * unit));
  EXPECT_FALSE(cache.AcceptPinned(ColumnSet::Single(3), kCountStar,
                                  MakeTable("t3", 100), false));
  EXPECT_EQ(cache.pinned_bytes(), 0u);
  EXPECT_EQ(governor.reserved(), 1.5 * unit);
  governor.Release(1.5 * unit);
  EXPECT_EQ(governor.reserved(), 0.0);
}

}  // namespace
}  // namespace gbmqo
