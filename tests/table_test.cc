#include "storage/table.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TablePtr MakeTable() {
  Schema schema({{"id", DataType::kInt64, false},
                 {"name", DataType::kString, false},
                 {"score", DataType::kDouble, false}});
  TableBuilder b(schema);
  EXPECT_TRUE(b.AppendRow({Value(1), Value("ann"), Value(3.5)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value("bob"), Value(1.5)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(3), Value("ann"), Value(2.5)}).ok());
  auto r = b.Build("t");
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(TableTest, BuildAndRead) {
  TablePtr t = MakeTable();
  EXPECT_EQ(t->name(), "t");
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->column(0).Int64At(1), 2);
  EXPECT_EQ(t->column(1).StringAt(2), "ann");
  auto row = t->Row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], Value(1));
  EXPECT_EQ(row[1], Value("ann"));
}

TEST(TableTest, AppendRowArityMismatch) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false}}));
  EXPECT_FALSE(b.AppendRow({Value(1), Value(2)}).ok());
}

TEST(TableTest, ByteSizePositive) {
  TablePtr t = MakeTable();
  EXPECT_GT(t->ByteSize(), 0u);
}

TEST(TableTest, AvgRowWidthSubset) {
  TablePtr t = MakeTable();
  const double full = t->AvgRowWidth({});
  const double ints = t->AvgRowWidth(ColumnSet{0});
  EXPECT_GT(full, ints);
  EXPECT_GE(ints, 8.0);
}

TEST(TableIndexTest, CreateAndFind) {
  TablePtr t = MakeTable();
  ASSERT_TRUE(t->CreateIndex(ColumnSet{1}).ok());
  const Index* idx = t->FindIndex(ColumnSet{1});
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->sorted_rows().size(), 3u);
  // Equal names are adjacent in the permutation.
  const auto& rows = idx->sorted_rows();
  const Column& name = t->column(1);
  bool ann_adjacent = false;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    if (name.StringAt(rows[i]) == "ann" && name.StringAt(rows[i + 1]) == "ann") {
      ann_adjacent = true;
    }
  }
  EXPECT_TRUE(ann_adjacent);
}

TEST(TableIndexTest, FindCoveringIndexPrefix) {
  TablePtr t = MakeTable();
  ASSERT_TRUE(t->CreateIndex(ColumnSet{0, 1}).ok());
  // {0} is the ordinal-prefix of index {0,1}.
  EXPECT_NE(t->FindCoveringIndex(ColumnSet{0}), nullptr);
  // {1} is not a prefix.
  EXPECT_EQ(t->FindCoveringIndex(ColumnSet{1}), nullptr);
  // Exact key matches itself.
  EXPECT_NE(t->FindCoveringIndex(ColumnSet{0, 1}), nullptr);
  // Empty set never matches.
  EXPECT_EQ(t->FindCoveringIndex(ColumnSet()), nullptr);
}

TEST(TableIndexTest, IndexKeyOutOfRange) {
  TablePtr t = MakeTable();
  EXPECT_FALSE(t->CreateIndex(ColumnSet{9}).ok());
  EXPECT_FALSE(t->CreateIndex(ColumnSet()).ok());
}

TEST(TableIndexTest, IndexOrdersNullsFirst) {
  TableBuilder b(Schema({{"a", DataType::kInt64, true}}));
  ASSERT_TRUE(b.AppendRow({Value(5)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(1)}).ok());
  TablePtr t = *b.Build("n");
  ASSERT_TRUE(t->CreateIndex(ColumnSet{0}).ok());
  const auto& rows = t->FindIndex(ColumnSet{0})->sorted_rows();
  EXPECT_TRUE(t->column(0).IsNull(rows[0]));
}

}  // namespace
}  // namespace gbmqo
