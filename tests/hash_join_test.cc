#include "exec/hash_join.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TablePtr MakeLeft() {
  TableBuilder b(Schema({{"k", DataType::kInt64, true},
                         {"v", DataType::kString, false}}));
  EXPECT_TRUE(b.AppendRow({Value(1), Value("a")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value("b")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value("c")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(Null{}), Value("n")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(9), Value("x")}).ok());
  return *b.Build("l");
}

TablePtr MakeRight() {
  TableBuilder b(Schema({{"k", DataType::kInt64, false},
                         {"w", DataType::kInt64, false}}));
  EXPECT_TRUE(b.AppendRow({Value(1), Value(10)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value(20)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value(21)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(3), Value(30)}).ok());
  return *b.Build("r");
}

TEST(HashJoinTest, InnerJoinCardinality) {
  ExecContext ctx;
  auto j = HashJoin(*MakeLeft(), *MakeRight(), {0, 0}, "j", &ctx);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  // k=1: 1x1; k=2: 2x2=4; NULL and k=9 and k=3 contribute nothing.
  EXPECT_EQ((*j)->num_rows(), 5u);
  EXPECT_EQ(ctx.counters().rows_emitted, 5u);
}

TEST(HashJoinTest, SchemaConcatWithCollisionSuffix) {
  auto j = HashJoin(*MakeLeft(), *MakeRight(), {0, 0}, "j", nullptr);
  ASSERT_TRUE(j.ok());
  const Schema& s = (*j)->schema();
  ASSERT_EQ(s.num_columns(), 4);
  EXPECT_EQ(s.column(0).name, "k");
  EXPECT_EQ(s.column(1).name, "v");
  EXPECT_EQ(s.column(2).name, "k_r");  // collision suffixed
  EXPECT_EQ(s.column(3).name, "w");
}

TEST(HashJoinTest, RowContentsCorrect) {
  auto j = HashJoin(*MakeLeft(), *MakeRight(), {0, 0}, "j", nullptr);
  ASSERT_TRUE(j.ok());
  // Every output row satisfies k == k_r.
  for (size_t row = 0; row < (*j)->num_rows(); ++row) {
    EXPECT_EQ((*j)->column(0).Int64At(row), (*j)->column(2).Int64At(row));
  }
}

TEST(HashJoinTest, NullKeysNeverJoin) {
  TableBuilder rb(Schema({{"k", DataType::kInt64, true}}));
  ASSERT_TRUE(rb.AppendRow({Value(Null{})}).ok());
  TablePtr right = *rb.Build("rn");
  auto j = HashJoin(*MakeLeft(), *right, {0, 0}, "j", nullptr);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->num_rows(), 0u);
}

TEST(HashJoinTest, StringKeys) {
  TableBuilder lb(Schema({{"name", DataType::kString, false}}));
  ASSERT_TRUE(lb.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(lb.AppendRow({Value("y")}).ok());
  TableBuilder rb(Schema({{"name2", DataType::kString, false},
                          {"val", DataType::kInt64, false}}));
  ASSERT_TRUE(rb.AppendRow({Value("y"), Value(7)}).ok());
  ASSERT_TRUE(rb.AppendRow({Value("z"), Value(8)}).ok());
  auto j = HashJoin(**lb.Build("l"), **rb.Build("r"), {0, 0}, "j", nullptr);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ((*j)->num_rows(), 1u);
  EXPECT_EQ((*j)->column(0).StringAt(0), "y");
  EXPECT_EQ((*j)->column(2).Int64At(0), 7);
}

TEST(HashJoinTest, TypeMismatchRejected) {
  TableBuilder rb(Schema({{"k", DataType::kString, false}}));
  TablePtr right = *rb.Build("rs");
  EXPECT_FALSE(HashJoin(*MakeLeft(), *right, {0, 0}, "j", nullptr).ok());
}

TEST(HashJoinTest, ColumnOutOfRangeRejected) {
  EXPECT_FALSE(HashJoin(*MakeLeft(), *MakeRight(), {7, 0}, "j", nullptr).ok());
  EXPECT_FALSE(HashJoin(*MakeLeft(), *MakeRight(), {0, 7}, "j", nullptr).ok());
}

TEST(HashJoinTest, EmptyInputsProduceEmptyOutput) {
  TableBuilder lb(Schema({{"k", DataType::kInt64, false}}));
  TablePtr empty = *lb.Build("e");
  auto j = HashJoin(*empty, *MakeRight(), {0, 0}, "j", nullptr);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->num_rows(), 0u);
}

}  // namespace
}  // namespace gbmqo
