#include "storage/column.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace gbmqo {
namespace {

TEST(ColumnTest, Int64AppendAndRead) {
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-3);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Int64At(0), 5);
  EXPECT_EQ(col.Int64At(1), -3);
  EXPECT_FALSE(col.has_nulls());
}

TEST(ColumnTest, DoubleAppendAndRead) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.5);
  EXPECT_DOUBLE_EQ(col.DoubleAt(0), 1.5);
}

TEST(ColumnTest, StringInterning) {
  Column col(DataType::kString);
  col.AppendString("alpha");
  col.AppendString("beta");
  col.AppendString("alpha");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.StringAt(0), "alpha");
  EXPECT_EQ(col.StringAt(2), "alpha");
  EXPECT_EQ(col.dict_size(), 2u);
  // Equal strings share a group code; distinct strings differ.
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
}

TEST(ColumnTest, NullTracking) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendInt64(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_TRUE(col.ValueAt(1).is_null());
}

TEST(ColumnTest, NullAfterManyRows) {
  // Exercises lazy bitmap materialization past one 64-bit word.
  Column col(DataType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt64(i);
  col.AppendNull();
  for (int i = 0; i < 100; ++i) col.AppendInt64(i);
  EXPECT_TRUE(col.IsNull(100));
  EXPECT_FALSE(col.IsNull(99));
  EXPECT_FALSE(col.IsNull(101));
  EXPECT_FALSE(col.IsNull(200));
  EXPECT_EQ(col.null_count(), 1u);
}

TEST(ColumnTest, NullStringVsEmptyString) {
  Column col(DataType::kString);
  col.AppendString("");
  col.AppendNull();
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.StringAt(0), "");
}

TEST(ColumnTest, GroupCodesInjectivePerType) {
  Column col(DataType::kInt64);
  col.AppendInt64(0);
  col.AppendInt64(-1);
  col.AppendInt64(1);
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(1), col.CodeAt(2));
}

TEST(ColumnTest, DoubleCodesDistinguishValues) {
  Column col(DataType::kDouble);
  col.AppendDouble(0.1);
  col.AppendDouble(0.2);
  col.AppendDouble(0.1);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column col(DataType::kInt64);
  EXPECT_TRUE(col.AppendValue(Value(1)).ok());
  EXPECT_TRUE(col.AppendValue(Value(Null{})).ok());
  EXPECT_FALSE(col.AppendValue(Value("s")).ok());
  Column dcol(DataType::kDouble);
  EXPECT_TRUE(dcol.AppendValue(Value(2.0)).ok());
  EXPECT_TRUE(dcol.AppendValue(Value(7)).ok());  // int widens to double
  EXPECT_DOUBLE_EQ(dcol.DoubleAt(1), 7.0);
}

TEST(ColumnTest, AppendFromCopiesValuesAndNulls) {
  Column src(DataType::kString);
  src.AppendString("x");
  src.AppendNull();
  Column dst(DataType::kString);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.StringAt(0), "x");
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, ByteSizeGrowsWithData) {
  Column col(DataType::kInt64);
  const size_t empty = col.ByteSize();
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i);
  EXPECT_GE(col.ByteSize(), empty + 8000);
}

TEST(ColumnTest, AvgWidthStringsReflectLength) {
  Column col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString("0123456789");  // 10 bytes
  // width >= payload (10) and includes the 4-byte code.
  EXPECT_GE(col.AvgWidthBytes(), 10.0);
}

TEST(ColumnTest, NumericAt) {
  Column icol(DataType::kInt64);
  icol.AppendInt64(4);
  EXPECT_DOUBLE_EQ(icol.NumericAt(0), 4.0);
  Column dcol(DataType::kDouble);
  dcol.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(dcol.NumericAt(0), 2.5);
}

// ---- Byte accounting edge cases (pinned: the optimizer's row-width
// estimates and temp-table accounting depend on these exact numbers) ----

TEST(ColumnWidthTest, EmptyColumnsReportNominalWidth) {
  // size() == 0: nothing to average, so AvgWidthBytes falls back to the
  // type's nominal width instead of dividing by zero.
  Column icol(DataType::kInt64);
  EXPECT_EQ(icol.ByteSize(), 0u);
  EXPECT_DOUBLE_EQ(icol.AvgWidthBytes(), 8.0);
  Column dcol(DataType::kDouble);
  EXPECT_DOUBLE_EQ(dcol.AvgWidthBytes(), 8.0);
  Column scol(DataType::kString);
  EXPECT_EQ(scol.ByteSize(), 0u);
  EXPECT_DOUBLE_EQ(scol.AvgWidthBytes(), 16.0);
}

TEST(ColumnWidthTest, AllNullStringColumnChargesCodesAndBitmap) {
  // 100 NULLs: per-row storage is the 4-byte placeholder code plus the null
  // bitmap (two 64-bit words), and no string payload — so the width is a
  // small positive number, not 0 and not the 16-byte nominal width.
  Column col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendNull();
  EXPECT_EQ(col.ByteSize(), 100 * 4 + 2 * 8u);
  EXPECT_DOUBLE_EQ(col.AvgWidthBytes(), 4.16);
  EXPECT_EQ(col.null_count(), 100u);
}

TEST(ColumnWidthTest, StringPayloadChargedPerOccurrenceNotPerDictEntry) {
  // The same 8-byte string appended 100 times interns once but must be
  // charged per row occurrence (row-store width model) — and never double-
  // counted through the dictionary.
  Column col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString("abcdefgh");
  EXPECT_EQ(col.dict_size(), 1u);
  EXPECT_EQ(col.ByteSize(), 100 * 4 + 100 * 8u);
  EXPECT_DOUBLE_EQ(col.AvgWidthBytes(), 12.0);
}

// ---- Code-domain metadata (aggregation kernel selection) ----

TEST(ColumnCodeRangeTest, EmptyAndAllNullColumnsHaveNoRange) {
  Column empty(DataType::kInt64);
  EXPECT_FALSE(empty.HasCodeRange());
  EXPECT_EQ(empty.CodeRange(), 0u);
  EXPECT_EQ(empty.CodeBits(), 0);
  Column nulls(DataType::kInt64);
  nulls.AppendNull();
  nulls.AppendNull();
  EXPECT_FALSE(nulls.HasCodeRange());
  EXPECT_EQ(nulls.CodeBits(), 0);
}

TEST(ColumnCodeRangeTest, SingleValueColumnNeedsZeroBits) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 10; ++i) col.AppendInt64(42);
  EXPECT_TRUE(col.HasCodeRange());
  EXPECT_EQ(col.CodeRange(), 0u);
  EXPECT_EQ(col.CodeBits(), 0);
}

TEST(ColumnCodeRangeTest, SignedInt64RangeBracketsNegatives) {
  // min/max compare as signed for INT64, so -3 (huge unsigned bit pattern)
  // is the minimum and every offset code lands in [0, range].
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-3);
  col.AppendInt64(10);
  EXPECT_EQ(col.CodeRangeMin(), static_cast<uint64_t>(int64_t{-3}));
  EXPECT_EQ(col.CodeRange(), 13u);
  EXPECT_EQ(col.CodeBits(), 4);
  for (size_t r = 0; r < col.size(); ++r) {
    EXPECT_LE(col.CodeAt(r) - col.CodeRangeMin(), col.CodeRange()) << r;
  }
}

TEST(ColumnCodeRangeTest, FullInt64DomainNeedsSixtyFourBits) {
  Column col(DataType::kInt64);
  col.AppendInt64(std::numeric_limits<int64_t>::min());
  col.AppendInt64(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(col.CodeRange(), ~uint64_t{0});
  EXPECT_EQ(col.CodeBits(), 64);
}

TEST(ColumnCodeRangeTest, NullPlaceholderExcludedFromStringRange) {
  // AppendNull interns "" as dictionary code 0, but the placeholder must
  // not widen the code range: only real values count.
  Column col(DataType::kString);
  col.AppendNull();
  col.AppendString("a");
  col.AppendString("b");
  EXPECT_EQ(col.dict_size(), 3u);  // "", "a", "b"
  EXPECT_EQ(col.CodeRangeMin(), 1u);
  EXPECT_EQ(col.CodeRange(), 1u);
  EXPECT_EQ(col.CodeBits(), 1);
}

TEST(ColumnCodeRangeTest, CodeBlockMatchesCodeAt) {
  Column icol(DataType::kInt64);
  Column dcol(DataType::kDouble);
  Column scol(DataType::kString);
  for (int i = 0; i < 200; ++i) {
    icol.AppendInt64(i * 37 - 1000);
    dcol.AppendDouble(static_cast<double>(i) / 8.0);
    scol.AppendString("s" + std::to_string(i % 13));
  }
  icol.AppendNull();
  for (const Column* col : {&icol, &dcol, &scol}) {
    const size_t begin = 50;
    const size_t count = col->size() - begin;
    std::vector<uint64_t> codes(count);
    col->CodeBlock(begin, count, codes.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(codes[i], col->CodeAt(begin + i)) << i;
    }
  }
}

}  // namespace
}  // namespace gbmqo
