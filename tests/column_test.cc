#include "storage/column.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TEST(ColumnTest, Int64AppendAndRead) {
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-3);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Int64At(0), 5);
  EXPECT_EQ(col.Int64At(1), -3);
  EXPECT_FALSE(col.has_nulls());
}

TEST(ColumnTest, DoubleAppendAndRead) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.5);
  EXPECT_DOUBLE_EQ(col.DoubleAt(0), 1.5);
}

TEST(ColumnTest, StringInterning) {
  Column col(DataType::kString);
  col.AppendString("alpha");
  col.AppendString("beta");
  col.AppendString("alpha");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.StringAt(0), "alpha");
  EXPECT_EQ(col.StringAt(2), "alpha");
  EXPECT_EQ(col.dict_size(), 2u);
  // Equal strings share a group code; distinct strings differ.
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
}

TEST(ColumnTest, NullTracking) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendInt64(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_TRUE(col.ValueAt(1).is_null());
}

TEST(ColumnTest, NullAfterManyRows) {
  // Exercises lazy bitmap materialization past one 64-bit word.
  Column col(DataType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt64(i);
  col.AppendNull();
  for (int i = 0; i < 100; ++i) col.AppendInt64(i);
  EXPECT_TRUE(col.IsNull(100));
  EXPECT_FALSE(col.IsNull(99));
  EXPECT_FALSE(col.IsNull(101));
  EXPECT_FALSE(col.IsNull(200));
  EXPECT_EQ(col.null_count(), 1u);
}

TEST(ColumnTest, NullStringVsEmptyString) {
  Column col(DataType::kString);
  col.AppendString("");
  col.AppendNull();
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.StringAt(0), "");
}

TEST(ColumnTest, GroupCodesInjectivePerType) {
  Column col(DataType::kInt64);
  col.AppendInt64(0);
  col.AppendInt64(-1);
  col.AppendInt64(1);
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(1), col.CodeAt(2));
}

TEST(ColumnTest, DoubleCodesDistinguishValues) {
  Column col(DataType::kDouble);
  col.AppendDouble(0.1);
  col.AppendDouble(0.2);
  col.AppendDouble(0.1);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column col(DataType::kInt64);
  EXPECT_TRUE(col.AppendValue(Value(1)).ok());
  EXPECT_TRUE(col.AppendValue(Value(Null{})).ok());
  EXPECT_FALSE(col.AppendValue(Value("s")).ok());
  Column dcol(DataType::kDouble);
  EXPECT_TRUE(dcol.AppendValue(Value(2.0)).ok());
  EXPECT_TRUE(dcol.AppendValue(Value(7)).ok());  // int widens to double
  EXPECT_DOUBLE_EQ(dcol.DoubleAt(1), 7.0);
}

TEST(ColumnTest, AppendFromCopiesValuesAndNulls) {
  Column src(DataType::kString);
  src.AppendString("x");
  src.AppendNull();
  Column dst(DataType::kString);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.StringAt(0), "x");
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, ByteSizeGrowsWithData) {
  Column col(DataType::kInt64);
  const size_t empty = col.ByteSize();
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i);
  EXPECT_GE(col.ByteSize(), empty + 8000);
}

TEST(ColumnTest, AvgWidthStringsReflectLength) {
  Column col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString("0123456789");  // 10 bytes
  // width >= payload (10) and includes the 4-byte code.
  EXPECT_GE(col.AvgWidthBytes(), 10.0);
}

TEST(ColumnTest, NumericAt) {
  Column icol(DataType::kInt64);
  icol.AppendInt64(4);
  EXPECT_DOUBLE_EQ(icol.NumericAt(0), 4.0);
  Column dcol(DataType::kDouble);
  dcol.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(dcol.NumericAt(0), 2.5);
}

}  // namespace
}  // namespace gbmqo
