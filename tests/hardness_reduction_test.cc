// Appendix A (the NP-completeness reduction) verified numerically: for a
// cross product R = R1 x ... x RN of single-column relations with distinct
// tuples, the optimal GB-MQO plan for the N single-column queries under the
// Cardinality cost model costs exactly
//
//     C(P_opt) = 2 * C'(T_opt)
//
// where C'(T) is the sum of internal-node cardinalities of the optimal
// bushy cross-product plan T (the appendix's mapping f sends the join
// tree's root to R and each internal node to the Group By over its leaves'
// columns). We brute-force T_opt over all bushy trees and compare against
// ExhaustiveOptimizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/exhaustive.h"
#include "cost/cost_model.h"

namespace gbmqo {
namespace {

/// Builds the cross product of single-column relations with the given
/// sizes: one column per relation, all combinations, all tuples distinct.
TablePtr CrossProduct(const std::vector<int64_t>& sizes) {
  std::vector<ColumnDef> defs;
  for (size_t i = 0; i < sizes.size(); ++i) {
    defs.push_back({"c" + std::to_string(i), DataType::kInt64, false});
  }
  TableBuilder b{Schema(std::move(defs))};
  int64_t total = 1;
  for (int64_t s : sizes) total *= s;
  for (int64_t row = 0; row < total; ++row) {
    int64_t rest = row;
    std::vector<Value> values;
    for (int64_t s : sizes) {
      values.push_back(Value(rest % s));
      rest /= s;
    }
    EXPECT_TRUE(b.AppendRow(values).ok());
  }
  return *b.Build("product");
}

/// Minimum over all bushy trees of the sum of internal-node cardinalities
/// (each internal node's cardinality is the product of its leaf sizes).
/// Classic subset DP: best[S] = |S-product| + min over splits (best[A] +
/// best[S\A]); singletons cost 0 (leaves are not internal).
double OptimalBushyCost(const std::vector<int64_t>& sizes) {
  const int n = static_cast<int>(sizes.size());
  const uint32_t full = (1u << n) - 1;
  std::vector<double> product(full + 1, 1.0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int bit = std::countr_zero(mask);
    product[mask] =
        product[mask ^ (1u << bit)] * static_cast<double>(sizes[bit]);
  }
  std::vector<double> best(full + 1, 0.0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton: a leaf
    double m = std::numeric_limits<double>::infinity();
    // Enumerate proper splits (A, mask\A) with A containing the lowest bit.
    const uint32_t lowest = mask & (~mask + 1);
    const uint32_t others = mask ^ lowest;
    for (uint32_t sub = (others - 1) & others;; sub = (sub - 1) & others) {
      const uint32_t a = sub | lowest;
      if (a != mask) m = std::min(m, best[a] + best[mask ^ a]);
      if (sub == 0) break;
    }
    best[mask] = product[mask] + m;
  }
  return best[full];
}

class ReductionTest : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(ReductionTest, OptimalPlanCostIsTwiceOptimalBushyCost) {
  const std::vector<int64_t> sizes = GetParam();
  TablePtr product = CrossProduct(sizes);
  StatisticsManager stats(*product);
  WhatIfProvider whatif(&stats);
  CardinalityCostModel model;
  ExhaustiveOptimizer exhaustive(&model, &whatif);

  std::vector<int> cols;
  for (size_t i = 0; i < sizes.size(); ++i) cols.push_back(static_cast<int>(i));
  auto r = exhaustive.Optimize(SingleColumnRequests(cols));
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const double expected = 2.0 * OptimalBushyCost(sizes);
  EXPECT_DOUBLE_EQ(r->cost, expected)
      << "plan: " << r->plan.ToString();
}

INSTANTIATE_TEST_SUITE_P(CrossProducts, ReductionTest,
                         ::testing::Values(std::vector<int64_t>{2, 3},
                                           std::vector<int64_t>{2, 3, 4},
                                           std::vector<int64_t>{3, 3, 3},
                                           std::vector<int64_t>{2, 2, 5, 3},
                                           std::vector<int64_t>{2, 3, 4, 5}));

TEST(ReductionTest, OptimalPlanHasTwoSubPlans) {
  // Appendix A, sub-claim (1): the optimal plan consists of exactly two
  // sub-plans (a single sub-plan would make the root edge redundant; more
  // than two can always be improved by a type-(b) merge).
  const std::vector<int64_t> sizes = {2, 3, 4, 5};
  TablePtr product = CrossProduct(sizes);
  StatisticsManager stats(*product);
  WhatIfProvider whatif(&stats);
  CardinalityCostModel model;
  ExhaustiveOptimizer exhaustive(&model, &whatif);
  auto r = exhaustive.Optimize(SingleColumnRequests({0, 1, 2, 3}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.subplans.size(), 2u) << r->plan.ToString();
}

}  // namespace
}  // namespace gbmqo
