#include "core/plan_executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/optimizer_cost_model.h"
#include "core/exhaustive.h"
#include "core/grouping_sets_planner.h"
#include "core/optimizer.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

struct Fixture {
  explicit Fixture(size_t rows = 8000)
      : table(GenerateLineitem({.rows = rows, .seed = 21})), stats(*table),
        whatif(&stats) {
    EXPECT_TRUE(catalog.RegisterBase(table).ok());
  }
  TablePtr table;
  Catalog catalog;
  StatisticsManager stats;
  WhatIfProvider whatif;
};

/// Flattens a result table into key -> aggregate values.
std::map<std::string, std::vector<Value>> Keyed(const Table& result,
                                                int num_group_cols) {
  std::map<std::string, std::vector<Value>> out;
  for (size_t row = 0; row < result.num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < num_group_cols; ++c) {
      key += result.column(c).ValueAt(row).ToString() + "|";
    }
    std::vector<Value> aggs;
    for (int c = num_group_cols; c < result.schema().num_columns(); ++c) {
      aggs.push_back(result.column(c).ValueAt(row));
    }
    out[key] = std::move(aggs);
  }
  return out;
}

void ExpectSameResults(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, table_a] : a.results) {
    auto it = b.results.find(cols);
    ASSERT_TRUE(it != b.results.end()) << cols.ToString();
    const TablePtr& table_b = it->second;
    ASSERT_EQ(table_a->num_rows(), table_b->num_rows()) << cols.ToString();
    auto ka = Keyed(*table_a, cols.size());
    auto kb = Keyed(*table_b, cols.size());
    ASSERT_EQ(ka.size(), kb.size()) << cols.ToString();
    for (const auto& [key, aggs] : ka) {
      ASSERT_TRUE(kb.count(key)) << cols.ToString() << " " << key;
      ASSERT_EQ(aggs.size(), kb[key].size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        EXPECT_NEAR(aggs[i].AsDouble(), kb[key][i].AsDouble(),
                    1e-6 * (1.0 + std::abs(aggs[i].AsDouble())))
            << cols.ToString() << " " << key;
      }
    }
  }
}

TEST(PlanExecutorTest, NaivePlanProducesResults) {
  Fixture f;
  auto requests = SingleColumnRequests({kReturnflag, kShipmode});
  PlanExecutor exec(&f.catalog, "lineitem");
  auto r = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->results.size(), 2u);
  EXPECT_EQ(r->results.at(ColumnSet{kReturnflag})->num_rows(), 3u);
  EXPECT_EQ(r->results.at(ColumnSet{kShipmode})->num_rows(), 7u);
  // No temp tables in the naive plan.
  EXPECT_EQ(r->peak_temp_bytes, 0u);
  EXPECT_GT(r->counters.rows_scanned, 0u);
}

TEST(PlanExecutorTest, OptimizedPlanMatchesNaiveResults) {
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  PlanExecutor exec(&f.catalog, "lineitem");
  auto naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(naive.ok());

  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(plan->cost, plan->naive_cost);  // sharing must be found
  auto optimized = exec.Execute(plan->plan, requests);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  ExpectSameResults(*naive, *optimized);
  // The optimized plan scans fewer bytes overall.
  EXPECT_LT(optimized->counters.bytes_scanned, naive->counters.bytes_scanned);
  // And it materialized at least one temp table.
  EXPECT_GT(optimized->peak_temp_bytes, 0u);
}

TEST(PlanExecutorTest, TempTablesDroppedAfterExecution) {
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  PlanExecutor exec(&f.catalog, "lineitem");
  auto r = exec.Execute(plan->plan, requests);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(f.catalog.temp_bytes(), 0u) << "temp tables leaked";
}

TEST(PlanExecutorTest, GroupingSetsPlanMatchesNaive) {
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  GroupingSetsPlanner planner;
  auto plan = planner.Plan(requests, f.table->schema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  PlanExecutor exec(&f.catalog, "lineitem");
  auto gs = exec.Execute(*plan, requests);
  ASSERT_TRUE(gs.ok()) << gs.status().ToString();
  auto naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(naive.ok());
  ExpectSameResults(*naive, *gs);
}

TEST(PlanExecutorTest, ExhaustivePlanMatchesNaive) {
  Fixture f;
  auto requests = SingleColumnRequests(
      {kQuantity, kReturnflag, kShipdate, kCommitdate, kReceiptdate});
  OptimizerCostModel model(*f.table);
  ExhaustiveOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  PlanExecutor exec(&f.catalog, "lineitem");
  auto a = exec.Execute(plan->plan, requests);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(b.ok());
  ExpectSameResults(*a, *b);
}

TEST(PlanExecutorTest, MultiAggregatePlanCorrectThroughIntermediates) {
  Fixture f;
  // SUM/MIN/MAX over quantity grouped by returnflag and by linestatus,
  // forced through a shared (returnflag, linestatus) intermediate.
  std::vector<GroupByRequest> requests = {
      {ColumnSet{kReturnflag},
       {AggRequest{}, AggRequest{AggKind::kSum, kQuantity},
        AggRequest{AggKind::kMin, kQuantity},
        AggRequest{AggKind::kMax, kQuantity}}},
      {ColumnSet{kLinestatus},
       {AggRequest{AggKind::kSum, kQuantity}}},
  };
  LogicalPlan shared;
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  root.aggs = {AggRequest{}, AggRequest{AggKind::kSum, kQuantity},
               AggRequest{AggKind::kMin, kQuantity},
               AggRequest{AggKind::kMax, kQuantity}};
  PlanNode leaf1;
  leaf1.columns = {kReturnflag};
  leaf1.required = true;
  leaf1.aggs = requests[0].aggs;
  PlanNode leaf2;
  leaf2.columns = {kLinestatus};
  leaf2.required = true;
  leaf2.aggs = requests[1].aggs;
  root.children = {leaf1, leaf2};
  shared.subplans = {root};
  ASSERT_TRUE(shared.Validate(requests).ok());

  PlanExecutor exec(&f.catalog, "lineitem");
  auto via_shared = exec.Execute(shared, requests);
  ASSERT_TRUE(via_shared.ok()) << via_shared.status().ToString();
  auto via_naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(via_naive.ok());
  ExpectSameResults(*via_naive, *via_shared);
}

TEST(PlanExecutorTest, CubePlanServesAllSubsets) {
  Fixture f;
  std::vector<GroupByRequest> requests = {
      GroupByRequest::Count({kReturnflag}),
      GroupByRequest::Count({kLinestatus}),
      GroupByRequest::Count({kReturnflag, kLinestatus})};
  LogicalPlan plan;
  PlanNode cube;
  cube.columns = {kReturnflag, kLinestatus};
  cube.kind = NodeKind::kCube;
  cube.required = true;  // covers the pair itself
  PlanNode l1;
  l1.columns = {kReturnflag};
  l1.required = true;
  PlanNode l2;
  l2.columns = {kLinestatus};
  l2.required = true;
  cube.children = {l1, l2};
  plan.subplans = {cube};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&f.catalog, "lineitem");
  auto via_cube = exec.Execute(plan, requests);
  ASSERT_TRUE(via_cube.ok()) << via_cube.status().ToString();
  auto via_naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(via_naive.ok());
  ExpectSameResults(*via_naive, *via_cube);
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(PlanExecutorTest, RollupPlanServesPrefixes) {
  Fixture f;
  std::vector<GroupByRequest> requests = {
      GroupByRequest::Count({kShipdate}),
      GroupByRequest::Count({kShipdate, kShipmode})};
  LogicalPlan plan;
  PlanNode rollup;
  rollup.columns = {kShipdate, kShipmode};
  rollup.kind = NodeKind::kRollup;
  rollup.rollup_order = {kShipdate, kShipmode};
  PlanNode p1;
  p1.columns = {kShipdate};
  p1.required = true;
  PlanNode p2;
  p2.columns = {kShipdate, kShipmode};
  p2.required = true;
  rollup.children = {p1, p2};
  plan.subplans = {rollup};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&f.catalog, "lineitem");
  auto via_rollup = exec.Execute(plan, requests);
  ASSERT_TRUE(via_rollup.ok()) << via_rollup.status().ToString();
  auto via_naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(via_naive.ok());
  ExpectSameResults(*via_naive, *via_rollup);
}

TEST(PlanExecutorTest, InvalidPlanRejectedBeforeExecution) {
  Fixture f;
  auto requests = SingleColumnRequests({kReturnflag});
  LogicalPlan wrong = NaivePlan(SingleColumnRequests({kShipmode}));
  PlanExecutor exec(&f.catalog, "lineitem");
  EXPECT_FALSE(exec.Execute(wrong, requests).ok());
}

TEST(PlanExecutorTest, MissingBaseTableRejected) {
  Catalog empty;
  PlanExecutor exec(&empty, "nope");
  auto requests = SingleColumnRequests({0});
  EXPECT_FALSE(exec.Execute(NaivePlan(requests), requests).ok());
}

TEST(PlanExecutorTest, BreadthFirstScheduleExecutes) {
  // Force a BF mark and check execution still yields correct results.
  Fixture f;
  auto requests = SingleColumnRequests({kReturnflag, kLinestatus});
  LogicalPlan plan;
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  PlanNode a;
  a.columns = {kReturnflag};
  a.required = true;
  PlanNode b;
  b.columns = {kLinestatus};
  b.required = true;
  root.children = {a, b};
  root.mark = TraversalMark::kBreadthFirst;
  plan.subplans = {root};
  PlanExecutor exec(&f.catalog, "lineitem");
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(naive.ok());
  ExpectSameResults(*naive, *r);
}

TEST(PlanExecutorTest, SortHintedPlanMatchesHash) {
  Fixture f;
  auto requests = SingleColumnRequests({kShipmode});
  LogicalPlan sorted = NaivePlan(requests);
  sorted.subplans[0].strategy_hint = AggStrategy::kSort;
  PlanExecutor exec(&f.catalog, "lineitem");
  auto a = exec.Execute(sorted, requests);
  ASSERT_TRUE(a.ok());
  auto b = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(b.ok());
  ExpectSameResults(*a, *b);
  EXPECT_GT(a->counters.rows_sorted, 0u);
}

}  // namespace
}  // namespace gbmqo
