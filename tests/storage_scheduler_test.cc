#include "core/storage_scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace gbmqo {
namespace {

/// What-if provider with hand-assigned node sizes. Describe returns
/// rows = bytes(columns), row_width = 1, so EstimateNodeBytes(node) equals
/// the assigned value exactly (minus the aggregate columns, which we fold in
/// by assigning widths of 0... we simply set row_width via rows and width 1:
/// bytes = rows * (|cols|*0 + ...)). To keep it exact we put the whole
/// target in `rows` and force width 1 by construction below.
class SizedWhatIf : public WhatIfProvider {
 public:
  explicit SizedWhatIf(StatisticsManager* stats) : WhatIfProvider(stats) {}

  void Set(ColumnSet cols, double bytes) { sizes_[cols] = bytes; }

  NodeDesc Root() const override {
    NodeDesc d;
    d.rows = 1e9;
    d.row_width = 1;
    d.is_root = true;
    return d;
  }

  NodeDesc Describe(ColumnSet columns, int /*num_aggs*/ = 1) override {
    NodeDesc d;
    d.columns = columns;
    auto it = sizes_.find(columns);
    d.rows = it == sizes_.end() ? 1.0 : it->second;
    d.row_width = 1.0;
    return d;
  }

 private:
  std::map<ColumnSet, double> sizes_;
};

struct Fixture {
  Fixture() : table(MakeTable()), stats(*table), whatif(&stats) {}
  static TablePtr MakeTable() {
    TableBuilder b(Schema({{"a", DataType::kInt64, false}}));
    EXPECT_TRUE(b.AppendRow({Value(1)}).ok());
    return *b.Build("r");
  }
  TablePtr table;
  StatisticsManager stats;
  SizedWhatIf whatif;
};

PlanNode Node(ColumnSet cols, std::vector<PlanNode> children = {}) {
  PlanNode n;
  n.columns = cols;
  n.required = children.empty();
  n.children = std::move(children);
  return n;
}

TEST(StorageSchedulerTest, PaperFigure6Example) {
  // Figure 6: ABCD=10 with children ABC=6 (children AB=4, BC, AC leaves...)
  // Paper's numbers: ABCD=10, ABC=6, BCD=2, AB=4; BF at ABCD gives
  // 10+6+2=18, DF gives 10+6+4=20 -> BF wins with 18.
  // We model: ABCD{ABC{AB{A,B}, (leaves)}, BCD{(leaves)}}.
  Fixture f;
  // Column ids: A=0 B=1 C=2 D=3.
  f.whatif.Set({0, 1, 2, 3}, 10);
  f.whatif.Set({0, 1, 2}, 6);
  f.whatif.Set({1, 2, 3}, 2);
  f.whatif.Set({0, 1}, 4);

  PlanNode ab = Node({0, 1}, {Node({0}), Node({1})});
  PlanNode abc = Node({0, 1, 2}, {ab, Node({1, 2}), Node({0, 2})});
  PlanNode bcd = Node({1, 2, 3}, {Node({1, 3}), Node({2, 3})});
  PlanNode abcd = Node({0, 1, 2, 3}, {abc, bcd});

  const double storage = ScheduleSubPlan(&abcd, &f.whatif);
  EXPECT_DOUBLE_EQ(storage, 18.0);
  EXPECT_EQ(abcd.mark, TraversalMark::kBreadthFirst);
}

TEST(StorageSchedulerTest, LeafHasZeroStorage) {
  Fixture f;
  PlanNode leaf = Node({0});
  EXPECT_DOUBLE_EQ(ScheduleSubPlan(&leaf, &f.whatif), 0.0);
}

TEST(StorageSchedulerTest, DepthFirstWinsWithLightChildren) {
  Fixture f;
  f.whatif.Set({0, 1, 2}, 100);
  f.whatif.Set({0, 1}, 60);
  f.whatif.Set({1, 2}, 50);
  // Children subtrees are heavy to hold simultaneously; DF caps at
  // 100 + max(60, 50) = 160, BF = 100 + 110 = 210.
  PlanNode root = Node({0, 1, 2},
                       {Node({0, 1}, {Node({0}), Node({1})}),
                        Node({1, 2}, {Node({1}), Node({2})})});
  const double storage = ScheduleSubPlan(&root, &f.whatif);
  EXPECT_DOUBLE_EQ(storage, 160.0);
  EXPECT_EQ(root.mark, TraversalMark::kDepthFirst);
}

TEST(StorageSchedulerTest, BreadthFirstWinsWithHeavyGrandchildren) {
  Fixture f;
  f.whatif.Set({0, 1, 2, 3}, 10);
  f.whatif.Set({0, 1}, 2);
  f.whatif.Set({2, 3}, 2);
  f.whatif.Set({0}, 0);  // leaves are never materialized anyway
  // BF at root: 10 + 2 + 2 = 14; DF: 10 + max(Storage(01), Storage(23))
  // where Storage(01)=2 -> DF = 12. DF actually wins here; flip child sizes
  // to make BF win: give child subtrees deep heavy grandchildren.
  f.whatif.Set({0, 1}, 9);
  f.whatif.Set({2, 3}, 9);
  PlanNode root = Node({0, 1, 2, 3},
                       {Node({0, 1}, {Node({0}), Node({1})}),
                        Node({2, 3}, {Node({2}), Node({3})})});
  // BF: 10+9+9=28. DF: 10+max(9,9)=19 -> DF.
  const double storage = ScheduleSubPlan(&root, &f.whatif);
  EXPECT_DOUBLE_EQ(storage, 19.0);
  EXPECT_EQ(root.mark, TraversalMark::kDepthFirst);
}

TEST(StorageSchedulerTest, SimulationMatchesRecurrenceOnTwoLevelTrees) {
  // For trees of depth <= 2 the recurrence is exact; the simulated peak of
  // the emitted order must equal Storage(root).
  Fixture f;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    f.whatif.Set({0, 1, 2, 3}, static_cast<double>(rng.Uniform(100) + 1));
    f.whatif.Set({0, 1}, static_cast<double>(rng.Uniform(100) + 1));
    f.whatif.Set({2, 3}, static_cast<double>(rng.Uniform(100) + 1));
    PlanNode root = Node({0, 1, 2, 3},
                         {Node({0, 1}, {Node({0}), Node({1})}),
                          Node({2, 3}, {Node({2}), Node({3})})});
    const double estimated = ScheduleSubPlan(&root, &f.whatif);
    const double simulated = SimulatePeakStorage(root, &f.whatif);
    EXPECT_DOUBLE_EQ(simulated, estimated) << "trial " << trial;
  }
}

TEST(StorageSchedulerTest, SimulatedPeakNeverBelowLargestNode) {
  Fixture f;
  f.whatif.Set({0, 1, 2}, 50);
  f.whatif.Set({0, 1}, 20);
  PlanNode root =
      Node({0, 1, 2}, {Node({0, 1}, {Node({0}), Node({1})}), Node({2})});
  ScheduleSubPlan(&root, &f.whatif);
  EXPECT_GE(SimulatePeakStorage(root, &f.whatif), 50.0);
}

TEST(StorageSchedulerTest, PlanLevelPeakIsMaxOverSubplans) {
  Fixture f;
  f.whatif.Set({0, 1}, 30);
  f.whatif.Set({2, 3}, 70);
  LogicalPlan plan;
  plan.subplans = {Node({0, 1}, {Node({0}), Node({1})}),
                   Node({2, 3}, {Node({2}), Node({3})})};
  EXPECT_DOUBLE_EQ(SchedulePlanStorage(&plan, &f.whatif), 70.0);
}

}  // namespace
}  // namespace gbmqo
