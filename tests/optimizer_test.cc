#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/optimizer_cost_model.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

/// Small correlated table: (a,b) pair has tiny joint cardinality, c is
/// near-unique — merging (a),(b) should pay off, merging with (c) should not.
TablePtr MakeCorrelatedTable(int rows) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"c", DataType::kInt64, false},
                         {"d", DataType::kInt64, false}}));
  Rng rng(3);
  for (int i = 0; i < rows; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Uniform(8));
    EXPECT_TRUE(b.AppendRow({Value(a), Value(a * 3 + static_cast<int64_t>(rng.Uniform(3))),
                             Value(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(rows)))),
                             Value(static_cast<int64_t>(rng.Uniform(12)))})
                    .ok());
  }
  return *b.Build("corr");
}

struct Fixture {
  explicit Fixture(int rows = 20000)
      : table(MakeCorrelatedTable(rows)), stats(*table), whatif(&stats) {}
  TablePtr table;
  StatisticsManager stats;
  WhatIfProvider whatif;
};

TEST(OptimizerTest, NeverWorseThanNaive) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto r = opt.Optimize(SingleColumnRequests({0, 1, 2, 3}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->cost, r->naive_cost);
}

TEST(OptimizerTest, MergesCorrelatedColumns) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto r = opt.Optimize(SingleColumnRequests({0, 1, 2, 3}));
  ASSERT_TRUE(r.ok());
  // (a), (b), (d) are cheap to merge; (c) is near-unique and must stay a
  // direct child of R.
  EXPECT_LT(r->cost, r->naive_cost);
  bool c_is_root_child = false;
  for (const PlanNode& sub : r->plan.subplans) {
    if (sub.columns == ColumnSet{2} && sub.is_leaf()) c_is_root_child = true;
    // No intermediate should include the near-unique column c.
    if (!sub.is_leaf()) EXPECT_FALSE(sub.columns.Contains(2));
  }
  EXPECT_TRUE(c_is_root_child);
}

TEST(OptimizerTest, PlanValidatesAndCostMatchesRecomputation) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto requests = SingleColumnRequests({0, 1, 3});
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->plan.Validate(requests).ok());
  // The incrementally tracked cost must equal pricing the final plan.
  EXPECT_NEAR(r->cost, CostPlan(r->plan, &model, &f.whatif),
              1e-6 * (1 + r->cost));
}

TEST(OptimizerTest, SingleRequestIsNaive) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto r = opt.Optimize(SingleColumnRequests({0}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.subplans.size(), 1u);
  EXPECT_TRUE(r->plan.subplans[0].is_leaf());
  EXPECT_DOUBLE_EQ(r->cost, r->naive_cost);
}

TEST(OptimizerTest, RejectsInvalidRequests) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  EXPECT_FALSE(opt.Optimize({}).ok());
  EXPECT_FALSE(opt.Optimize({GroupByRequest::Count(ColumnSet{40})}).ok());
}

// Pruning soundness (Section 4.3): under the cardinality cost model with
// type-(b) merges only, enabling either pruning technique must not change
// the final plan cost.
class PruningSoundnessTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(PruningSoundnessTest, SameCostAsUnpruned) {
  auto [subsumption, monotonicity] = GetParam();
  TablePtr t = GenerateLineitem({.rows = 5000, .seed = 99});
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());

  auto run = [&](bool s, bool m) {
    CardinalityCostModel model;
    OptimizerOptions opts;
    opts.only_type_b = true;
    opts.subsumption_pruning = s;
    opts.monotonicity_pruning = m;
    GbMqoOptimizer opt(&model, &whatif, opts);
    auto r = opt.Optimize(requests);
    EXPECT_TRUE(r.ok());
    return r->cost;
  };

  const double base = run(false, false);
  const double pruned = run(subsumption, monotonicity);
  EXPECT_NEAR(pruned, base, 1e-6 * (1 + base));
}

INSTANTIATE_TEST_SUITE_P(Prunings, PruningSoundnessTest,
                         ::testing::Values(std::make_tuple(true, false),
                                           std::make_tuple(false, true),
                                           std::make_tuple(true, true)));

TEST(OptimizerTest, PruningReducesMergeEvaluations) {
  TablePtr t = GenerateLineitem({.rows = 5000, .seed = 99});
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  auto requests = TwoColumnRequests(
      {kQuantity, kReturnflag, kLinestatus, kShipdate, kShipmode});

  auto run = [&](bool s, bool m) {
    OptimizerCostModel model(*t);
    OptimizerOptions opts;
    opts.subsumption_pruning = s;
    opts.monotonicity_pruning = m;
    GbMqoOptimizer opt(&model, &whatif, opts);
    auto r = opt.Optimize(requests);
    EXPECT_TRUE(r.ok());
    return r->stats;
  };
  const OptimizerStats none = run(false, false);
  const OptimizerStats both = run(true, true);
  EXPECT_LT(both.merges_evaluated, none.merges_evaluated);
  EXPECT_GT(both.pairs_pruned_subsumption + both.pairs_pruned_monotonicity,
            0u);
}

TEST(OptimizerTest, BinaryRestrictionCostsNoMoreEvaluationsThanFull) {
  Fixture f;
  auto requests = SingleColumnRequests({0, 1, 2, 3});
  OptimizerCostModel m1(*f.table), m2(*f.table);
  OptimizerOptions binary;
  binary.only_type_b = true;
  GbMqoOptimizer full(&m1, &f.whatif), restricted(&m2, &f.whatif, binary);
  auto rf = full.Optimize(requests);
  auto rb = restricted.Optimize(requests);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_LE(rb->stats.candidates_costed, rf->stats.candidates_costed);
  EXPECT_TRUE(rb->plan.Validate(requests).ok());
}

TEST(OptimizerTest, StorageConstraintForcesNaive) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  OptimizerOptions opts;
  opts.max_intermediate_storage_bytes = 1.0;  // nothing fits
  GbMqoOptimizer opt(&model, &f.whatif, opts);
  auto requests = SingleColumnRequests({0, 1, 3});
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok());
  // Every sub-plan must be a leaf: no materialization possible.
  for (const PlanNode& sub : r->plan.subplans) EXPECT_TRUE(sub.is_leaf());
  EXPECT_DOUBLE_EQ(r->cost, r->naive_cost);
}

TEST(OptimizerTest, StorageConstraintLooseEqualsUnconstrained) {
  Fixture f;
  auto requests = SingleColumnRequests({0, 1, 2, 3});
  OptimizerCostModel m1(*f.table), m2(*f.table);
  OptimizerOptions capped;
  capped.max_intermediate_storage_bytes = 1e15;
  GbMqoOptimizer unconstrained(&m1, &f.whatif);
  GbMqoOptimizer constrained(&m2, &f.whatif, capped);
  auto r1 = unconstrained.Optimize(requests);
  auto r2 = constrained.Optimize(requests);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->cost, r2->cost);
}

TEST(OptimizerTest, CubeExtensionStillValid) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  OptimizerOptions opts;
  opts.enable_cube = true;
  opts.enable_rollup = true;
  GbMqoOptimizer opt(&model, &f.whatif, opts);
  auto requests = std::vector<GroupByRequest>{
      GroupByRequest::Count({0}), GroupByRequest::Count({1}),
      GroupByRequest::Count({0, 1})};
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->plan.Validate(requests).ok());
  EXPECT_LE(r->cost, r->naive_cost);
}

TEST(OptimizerTest, MultiAggregateRequestsCarryThrough) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  std::vector<GroupByRequest> requests = {
      {ColumnSet{0}, {AggRequest{}, AggRequest{AggKind::kSum, 2}}},
      {ColumnSet{1}, {AggRequest{AggKind::kMin, 3}}},
      GroupByRequest::Count({3}),
  };
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->plan.Validate(requests).ok());
}

TEST(OptimizerTest, StatsPopulated) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto r = opt.Optimize(SingleColumnRequests({0, 1, 2, 3}));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.iterations, 0u);
  EXPECT_GT(r->stats.merges_evaluated, 0u);
  EXPECT_GT(r->stats.candidates_costed, 0u);
  EXPECT_GT(r->stats.optimizer_calls, 0u);
  EXPECT_GE(r->stats.optimization_seconds, 0.0);
}

TEST(OptimizerTest, QuadraticMergeBound) {
  // The memoized search evaluates each pair at most once: merges_evaluated
  // <= C(n + iterations, 2) — comfortably bounded by (2n)^2.
  TablePtr t = GenerateLineitem({.rows = 3000, .seed = 5});
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*t);
  OptimizerOptions opts;
  opts.subsumption_pruning = false;
  opts.monotonicity_pruning = false;
  GbMqoOptimizer opt(&model, &whatif, opts);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  const uint64_t n = requests.size();
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.merges_evaluated, (2 * n) * (2 * n));
}

TEST(OptimizerTest, ExactCachedViewServesRequestForFree) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  auto requests = SingleColumnRequests({0, 1, 2, 3});

  OptimizerOptions opts;
  CachedViewDesc view;
  view.columns = requests[2].columns;  // {2}, the expensive near-unique one
  view.aggs = requests[2].aggs;
  const NodeDesc d = f.whatif.Describe(view.columns, 1);
  view.rows = d.rows;
  view.row_width = d.row_width;
  opts.cached_views.push_back(view);

  GbMqoOptimizer opt(&model, &f.whatif, opts);
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->cache_edges.size(), 1u);
  EXPECT_EQ(r->cache_edges.begin()->first, 2u);
  EXPECT_EQ(r->cache_edges.begin()->second, 0u);
  // The served request has no leaf in the plan.
  for (const PlanNode& sub : r->plan.subplans) {
    EXPECT_FALSE(sub.required && sub.columns == requests[2].columns);
  }
  // naive_cost still prices every request from R, so serving {2} for free
  // must beat both the naive plan and the cache-less optimum.
  GbMqoOptimizer no_cache(&model, &f.whatif);
  auto base = no_cache.Optimize(requests);
  ASSERT_TRUE(base.ok());
  EXPECT_LT(r->cost, base->cost);
  EXPECT_EQ(r->naive_cost, base->naive_cost);
}

TEST(OptimizerTest, SupersetCachedViewCostedAsReaggregation) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  auto requests = SingleColumnRequests({0, 1});

  // A pinned (a,b) COUNT(*) aggregate covers both single-column requests by
  // re-aggregation; its tiny cardinality makes the serve edge beat a base
  // scan for each.
  OptimizerOptions opts;
  CachedViewDesc view;
  view.columns = ColumnSet{0, 1};
  view.aggs = {AggRequest{}};
  const NodeDesc d = f.whatif.Describe(view.columns, 1);
  view.rows = d.rows;
  view.row_width = d.row_width;
  opts.cached_views.push_back(view);

  GbMqoOptimizer opt(&model, &f.whatif, opts);
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->cache_edges.size(), 2u);
  EXPECT_TRUE(r->plan.subplans.empty());
  EXPECT_GT(r->cost, 0.0);  // re-aggregation is cheap but not free
  EXPECT_LT(r->cost, r->naive_cost);
}

TEST(OptimizerTest, CachedViewMissingAggregateIsIgnored) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  std::vector<GroupByRequest> requests = {
      GroupByRequest{ColumnSet{0}, {AggRequest{AggKind::kSum, 2}}}};

  OptimizerOptions opts;
  CachedViewDesc view;
  view.columns = ColumnSet{0};
  view.aggs = {AggRequest{}};  // COUNT(*) only — cannot answer SUM(c)
  const NodeDesc d = f.whatif.Describe(view.columns, 1);
  view.rows = d.rows;
  view.row_width = d.row_width;
  opts.cached_views.push_back(view);

  GbMqoOptimizer opt(&model, &f.whatif, opts);
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cache_edges.empty());
  ASSERT_EQ(r->plan.subplans.size(), 1u);
}

}  // namespace
}  // namespace gbmqo
