// Accuracy properties of the hybrid (GEE + Chao) distinct estimator. The
// optimizer's plan quality hinges on not *underestimating* dense columns —
// an underestimate tricks the search into materializing near-|R|
// intermediates (the failure mode the hybrid exists to prevent).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/distinct_estimator.h"

namespace gbmqo {
namespace {

TablePtr UniformTable(uint64_t rows, uint64_t domain, uint64_t seed) {
  TableBuilder b(Schema({{"v", DataType::kInt64, false}}));
  Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(domain)))}).ok());
  }
  return *b.Build("u");
}

struct Case {
  uint64_t rows;
  uint64_t domain;
  uint64_t sample;
  double rel_tolerance;  // allowed |est - exact| / exact
};

class EstimatorAccuracyTest : public ::testing::TestWithParam<Case> {};

TEST_P(EstimatorAccuracyTest, WithinTolerance) {
  const Case c = GetParam();
  TablePtr t = UniformTable(c.rows, c.domain, c.rows + c.domain);
  const double exact = static_cast<double>(ExactDistinctCount(*t, {0}));
  const double est =
      static_cast<double>(SampledDistinctCount(*t, {0}, c.sample));
  EXPECT_NEAR(est, exact, c.rel_tolerance * exact)
      << "rows=" << c.rows << " domain=" << c.domain
      << " sample=" << c.sample;
}

INSTANTIATE_TEST_SUITE_P(
    Domains, EstimatorAccuracyTest,
    ::testing::Values(
        // Low cardinality: any reasonable sample nails it.
        Case{100000, 50, 5000, 0.02},
        Case{100000, 1000, 5000, 0.20},
        // Mid cardinality.
        Case{100000, 20000, 10000, 0.35},
        // Near-unique: the regime where plain GEE under-counted ~3-4x; the
        // Chao arm must keep the estimate within ~45%.
        Case{100000, 80000, 10000, 0.45},
        Case{100000, 1000000, 10000, 0.45}));

TEST(EstimatorAccuracyTest, NeverBelowSampleDistinct) {
  TablePtr t = UniformTable(50000, 30000, 3);
  const uint64_t est = SampledDistinctCount(*t, {0}, 5000);
  // At least the distinct count that a 5000-row sample must contain.
  EXPECT_GE(est, 4000u);
  EXPECT_LE(est, 50000u);  // never above the row count
}

TEST(EstimatorAccuracyTest, SharedSampleIsDeterministic) {
  TablePtr t = UniformTable(20000, 5000, 9);
  auto s1 = BuildRowSample(*t, 2000);
  auto s2 = BuildRowSample(*t, 2000);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(GeeEstimateFromSample(**s1, {0}, t->num_rows()),
            GeeEstimateFromSample(**s2, {0}, t->num_rows()));
}

TEST(EstimatorAccuracyTest, MultiColumnSampleEstimate) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false}}));
  Rng rng(17);
  for (int i = 0; i < 60000; ++i) {
    ASSERT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(30))),
                             Value(static_cast<int64_t>(rng.Uniform(40)))})
                    .ok());
  }
  TablePtr t = *b.Build("t");
  const double exact = static_cast<double>(ExactDistinctCount(*t, {0, 1}));
  const double est =
      static_cast<double>(SampledDistinctCount(*t, {0, 1}, 8000));
  EXPECT_NEAR(est, exact, 0.15 * exact);
}

}  // namespace
}  // namespace gbmqo
