#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace gbmqo {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(&rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.02);
  }
}

TEST(ZipfTest, HighThetaConcentratesOnHead) {
  ZipfGenerator zipf(1000, 2.0);
  Rng rng(3);
  int head = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(&rng) < 10) ++head;
  }
  // With theta=2 over 1000 values, >90% of mass is on the first 10.
  EXPECT_GT(static_cast<double>(head) / kDraws, 0.9);
}

class ZipfRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfRatioTest, FrequencyRatioMatchesTheta) {
  // P(0)/P(1) should be 2^theta.
  const double theta = GetParam();
  ZipfGenerator zipf(100, theta);
  Rng rng(11);
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 400000; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    if (v == 0) ++c0;
    if (v == 1) ++c1;
  }
  ASSERT_GT(c1, 0);
  EXPECT_NEAR(static_cast<double>(c0) / c1, std::pow(2.0, theta),
              0.15 * std::pow(2.0, theta));
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfRatioTest,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(ZipfTest, SamplesStayInDomain) {
  ZipfGenerator zipf(7, 1.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

}  // namespace
}  // namespace gbmqo
