#include "data/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gbmqo {
namespace {

TEST(CsvSplitTest, PlainFields) {
  auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvSplitTest, QuotedFieldsAndEscapes) {
  auto f = SplitCsvLine(R"("hello, world",plain,"say ""hi""")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "hello, world");
  EXPECT_EQ(f[1], "plain");
  EXPECT_EQ(f[2], "say \"hi\"");
}

TEST(CsvSplitTest, EmptyFieldsPreserved) {
  auto f = SplitCsvLine("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(CsvReadTest, TypeInference) {
  std::istringstream in("id,score,label\n1,2.5,x\n2,3.5,y\n3,4,z\n");
  auto t = ReadCsv(in, "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->num_rows(), 3u);
  EXPECT_EQ((*t)->schema().column(0).type, DataType::kInt64);
  EXPECT_EQ((*t)->schema().column(1).type, DataType::kDouble);
  EXPECT_EQ((*t)->schema().column(2).type, DataType::kString);
  EXPECT_EQ((*t)->column(0).Int64At(2), 3);
  EXPECT_DOUBLE_EQ((*t)->column(1).DoubleAt(0), 2.5);
  EXPECT_EQ((*t)->column(2).StringAt(1), "y");
}

TEST(CsvReadTest, EmptyCellsBecomeNull) {
  std::istringstream in("a,b\n1,2\n,4\n");
  auto t = ReadCsv(in, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t)->column(0).IsNull(1));
  EXPECT_EQ((*t)->column(1).Int64At(1), 4);
}

TEST(CsvReadTest, ExplicitTypesOverrideInference) {
  std::istringstream in("a\n1\n2\n");
  CsvReadOptions options;
  options.types = {DataType::kString};
  auto t = ReadCsv(in, "t", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->column(0).StringAt(0), "1");
}

TEST(CsvReadTest, MaxRows) {
  std::istringstream in("a\n1\n2\n3\n4\n");
  CsvReadOptions options;
  options.max_rows = 2;
  auto t = ReadCsv(in, "t", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 2u);
}

TEST(CsvReadTest, Errors) {
  std::istringstream empty("");
  EXPECT_FALSE(ReadCsv(empty, "t").ok());
  std::istringstream ragged("a,b\n1\n");
  EXPECT_FALSE(ReadCsv(ragged, "t").ok());
  std::istringstream bad_type("a\nx\n");
  CsvReadOptions force_int;
  force_int.types = {DataType::kInt64};
  EXPECT_FALSE(ReadCsv(bad_type, "t", force_int).ok());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/file.csv", "t").ok());
}

TEST(CsvReadTest, SubnormalDoublesParse) {
  // Regression: strtod sets errno = ERANGE on underflow while still
  // returning the correct denormal, and the reader used to fail the whole
  // parse on any ERANGE. Subnormal cells must load; only true overflow may
  // reject the double interpretation.
  std::istringstream in("tiny\n1e-320\n-4.9e-324\n0.5\n");
  auto t = ReadCsv(in, "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->schema().column(0).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ((*t)->column(0).DoubleAt(0), 1e-320);
  EXPECT_DOUBLE_EQ((*t)->column(0).DoubleAt(1), -4.9e-324);
  EXPECT_DOUBLE_EQ((*t)->column(0).DoubleAt(2), 0.5);

  // Overflow still rejects the double interpretation: the column falls back
  // to STRING under inference, and fails under a forced double type.
  std::istringstream huge("big\n1e999\n");
  auto s = ReadCsv(huge, "s");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->schema().column(0).type, DataType::kString);
  std::istringstream huge2("big\n1e999\n");
  CsvReadOptions force_double;
  force_double.types = {DataType::kDouble};
  EXPECT_FALSE(ReadCsv(huge2, "s2", force_double).ok());
}

TEST(CsvRoundTripTest, WriteThenReadPreservesData) {
  TableBuilder b(Schema({{"i", DataType::kInt64, true},
                         {"d", DataType::kDouble, false},
                         {"s", DataType::kString, false}}));
  ASSERT_TRUE(b.AppendRow({Value(1), Value(1.5), Value("plain")}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{}), Value(2.5), Value("with,comma")}).ok());
  ASSERT_TRUE(b.AppendRow({Value(3), Value(3.5), Value("has \"quote\"")}).ok());
  TablePtr t = *b.Build("orig");

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*t, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "copy");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ((*back)->num_rows(), 3u);
  EXPECT_TRUE((*back)->column(0).IsNull(1));
  EXPECT_EQ((*back)->column(0).Int64At(2), 3);
  EXPECT_EQ((*back)->column(2).StringAt(1), "with,comma");
  EXPECT_EQ((*back)->column(2).StringAt(2), "has \"quote\"");
}

TEST(CsvRoundTripTest, HeaderQuoting) {
  TableBuilder b(Schema({{"weird,name", DataType::kInt64, false}}));
  ASSERT_TRUE(b.AppendRow({Value(1)}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(**b.Build("t"), out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "copy");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->schema().column(0).name, "weird,name");
}

}  // namespace
}  // namespace gbmqo
