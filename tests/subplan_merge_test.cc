#include "core/subplan_merge.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

PlanNode Leaf(ColumnSet cols, bool required = true) {
  PlanNode n;
  n.columns = cols;
  n.required = required;
  return n;
}

PlanNode Tree(ColumnSet root_cols, std::vector<PlanNode> children,
              bool required = false) {
  PlanNode n;
  n.columns = root_cols;
  n.required = required;
  n.aggs = {AggRequest{}};
  n.children = std::move(children);
  return n;
}

// Does any candidate have root `cols` with exactly `num_children` children?
bool HasShape(const std::vector<PlanNode>& cands, ColumnSet cols,
              size_t num_children,
              NodeKind kind = NodeKind::kGroupBy) {
  for (const PlanNode& c : cands) {
    if (c.columns == cols && c.children.size() == num_children &&
        c.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(SubPlanMergeTest, TwoRequiredLeavesYieldTypeBOnly) {
  // Both leaves required: shapes (a),(c),(d) are inapplicable.
  auto cands = SubPlanMerge(Leaf({0}), Leaf({1}));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].columns, (ColumnSet{0, 1}));
  EXPECT_FALSE(cands[0].required);
  ASSERT_EQ(cands[0].children.size(), 2u);
  EXPECT_TRUE(cands[0].children[0].required);
  EXPECT_TRUE(cands[0].children[1].required);
}

TEST(SubPlanMergeTest, NonRequiredRootsEnableShapesACD) {
  // P1 = {0,1} over leaves {0},{1}; P2 = {2,3} over leaves {2},{3}.
  PlanNode p1 = Tree({0, 1}, {Leaf({0}), Leaf({1})});
  PlanNode p2 = Tree({2, 3}, {Leaf({2}), Leaf({3})});
  auto cands = SubPlanMerge(p1, p2);
  const ColumnSet m{0, 1, 2, 3};
  // (b): children = [P1, P2].
  EXPECT_TRUE(HasShape(cands, m, 2));
  // (a): all four leaves directly under m.
  EXPECT_TRUE(HasShape(cands, m, 4));
  // (c)/(d): three children.
  int three = 0;
  for (const PlanNode& c : cands) {
    if (c.children.size() == 3) ++three;
  }
  EXPECT_EQ(three, 2);
  EXPECT_EQ(cands.size(), 4u);
}

TEST(SubPlanMergeTest, RequiredRootsBlockElision) {
  PlanNode p1 = Tree({0, 1}, {Leaf({0})}, /*required=*/true);
  PlanNode p2 = Tree({2, 3}, {Leaf({2})}, /*required=*/false);
  auto cands = SubPlanMerge(p1, p2);
  // (a) requires both non-required; (c) requires p1 non-required. Only (b)
  // and (d) remain.
  EXPECT_EQ(cands.size(), 2u);
  for (const PlanNode& c : cands) {
    // p1's root must survive in every candidate.
    bool p1_present = false;
    for (const PlanNode& child : c.children) {
      if (child.columns == (ColumnSet{0, 1})) p1_present = true;
    }
    EXPECT_TRUE(p1_present);
  }
}

TEST(SubPlanMergeTest, OnlyTypeBRestriction) {
  PlanNode p1 = Tree({0, 1}, {Leaf({0}), Leaf({1})});
  PlanNode p2 = Tree({2, 3}, {Leaf({2}), Leaf({3})});
  MergeOptions opts;
  opts.only_type_b = true;
  auto cands = SubPlanMerge(p1, p2, opts);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].children.size(), 2u);
}

TEST(SubPlanMergeTest, SubsumptionAttachesUnderContainer) {
  auto cands = SubPlanMerge(Leaf({0, 1}), Leaf({0}));
  ASSERT_EQ(cands.size(), 1u);
  const PlanNode& c = cands[0];
  EXPECT_EQ(c.columns, (ColumnSet{0, 1}));
  EXPECT_TRUE(c.required);  // the container leaf was required
  ASSERT_EQ(c.children.size(), 1u);
  EXPECT_EQ(c.children[0].columns, ColumnSet{0});
}

TEST(SubPlanMergeTest, SubsumptionElidesNonRequiredInner) {
  // sub-root {0,1} is NOT required and has children; container {0,1,2}.
  PlanNode inner = Tree({0, 1}, {Leaf({0}), Leaf({1})});
  PlanNode outer = Leaf({0, 1, 2});
  auto cands = SubPlanMerge(outer, inner);
  // Option 1: attach inner whole. Option 2: elide inner root.
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_TRUE(HasShape(cands, {0, 1, 2}, 1));
  EXPECT_TRUE(HasShape(cands, {0, 1, 2}, 2));
}

TEST(SubPlanMergeTest, EqualRootsUnify) {
  PlanNode p1 = Tree({0, 1}, {Leaf({0})}, /*required=*/false);
  PlanNode p2 = Tree({0, 1}, {Leaf({1})}, /*required=*/true);
  auto cands = SubPlanMerge(p1, p2);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].columns, (ColumnSet{0, 1}));
  EXPECT_TRUE(cands[0].required);
  EXPECT_EQ(cands[0].children.size(), 2u);
}

TEST(SubPlanMergeTest, MergedRootCarriesUnionedAggregates) {
  PlanNode p1 = Leaf({0});
  p1.aggs = {AggRequest{AggKind::kSum, 5}};
  PlanNode p2 = Leaf({1});
  p2.aggs = {AggRequest{AggKind::kMin, 6}};
  auto cands = SubPlanMerge(p1, p2);
  ASSERT_EQ(cands.size(), 1u);
  // Union + implicit COUNT(*): 3 aggregates.
  EXPECT_EQ(cands[0].aggs.size(), 3u);
}

TEST(SubPlanMergeTest, CubeCandidateForLeafPair) {
  MergeOptions opts;
  opts.enable_cube = true;
  auto cands = SubPlanMerge(Leaf({0}), Leaf({1}), opts);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_TRUE(HasShape(cands, {0, 1}, 2, NodeKind::kCube));
}

TEST(SubPlanMergeTest, CubeRespectsWidthCap) {
  MergeOptions opts;
  opts.enable_cube = true;
  opts.max_cube_width = 2;
  auto cands = SubPlanMerge(Leaf({0, 1}), Leaf({2}), opts);
  for (const PlanNode& c : cands) EXPECT_NE(c.kind, NodeKind::kCube);
}

TEST(SubPlanMergeTest, RollupCandidateForNestedLeaves) {
  MergeOptions opts;
  opts.enable_rollup = true;
  auto cands = SubPlanMerge(Leaf({0, 1, 2}), Leaf({1}), opts);
  bool found_rollup = false;
  for (const PlanNode& c : cands) {
    if (c.kind == NodeKind::kRollup) {
      found_rollup = true;
      // Order must put the inner set first so it is a prefix.
      ASSERT_EQ(c.rollup_order.size(), 3u);
      EXPECT_EQ(c.rollup_order[0], 1);
      EXPECT_EQ(c.children.size(), 2u);  // both required leaves covered
    }
  }
  EXPECT_TRUE(found_rollup);
}

TEST(SubPlanMergeTest, UnionAggsDeduplicatesAndAddsCount) {
  std::vector<AggRequest> a = {AggRequest{AggKind::kSum, 1}};
  std::vector<AggRequest> b = {AggRequest{AggKind::kSum, 1},
                               AggRequest{AggKind::kMax, 2}};
  auto u = UnionAggs(a, b);
  EXPECT_EQ(u.size(), 3u);  // count, sum_1, max_2
}

}  // namespace
}  // namespace gbmqo
