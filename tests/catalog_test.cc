#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TablePtr MakeTable(const std::string& name, int rows) {
  TableBuilder b(Schema({{"x", DataType::kInt64, false}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(b.AppendRow({Value(i)}).ok());
  }
  return *b.Build(name);
}

TEST(CatalogTest, RegisterAndGet) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("r", 10)).ok());
  auto r = cat.Get("r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 10u);
  EXPECT_TRUE(cat.Exists("r"));
  EXPECT_FALSE(cat.Exists("missing"));
  EXPECT_TRUE(cat.Get("missing").status().IsNotFound());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("r", 1)).ok());
  EXPECT_TRUE(cat.RegisterBase(MakeTable("r", 1)).IsAlreadyExists());
  EXPECT_TRUE(cat.RegisterTemp(MakeTable("r", 1)).IsAlreadyExists());
}

TEST(CatalogTest, DropReleasesName) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("r", 1)).ok());
  ASSERT_TRUE(cat.Drop("r").ok());
  EXPECT_FALSE(cat.Exists("r"));
  EXPECT_TRUE(cat.Drop("r").IsNotFound());
  // Name can be reused after drop.
  EXPECT_TRUE(cat.RegisterBase(MakeTable("r", 2)).ok());
}

TEST(CatalogTest, TempStorageAccounting) {
  Catalog cat;
  EXPECT_EQ(cat.temp_bytes(), 0u);
  TablePtr t1 = MakeTable("t1", 1000);
  TablePtr t2 = MakeTable("t2", 500);
  const uint64_t b1 = t1->ByteSize();
  const uint64_t b2 = t2->ByteSize();
  ASSERT_TRUE(cat.RegisterTemp(t1).ok());
  ASSERT_TRUE(cat.RegisterTemp(t2).ok());
  EXPECT_EQ(cat.temp_bytes(), b1 + b2);
  EXPECT_EQ(cat.peak_temp_bytes(), b1 + b2);
  ASSERT_TRUE(cat.Drop("t1").ok());
  EXPECT_EQ(cat.temp_bytes(), b2);
  // Peak is sticky.
  EXPECT_EQ(cat.peak_temp_bytes(), b1 + b2);
  cat.ResetPeakTempBytes();
  EXPECT_EQ(cat.peak_temp_bytes(), b2);
}

TEST(CatalogTest, BaseTablesDoNotCountAsTemp) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("r", 1000)).ok());
  EXPECT_EQ(cat.temp_bytes(), 0u);
}

TEST(CatalogTest, AddTempRefExtendsLifetime) {
  Catalog cat;
  TablePtr t = MakeTable("t", 100);
  ASSERT_TRUE(cat.RegisterTempWithRefs(t, 1).ok());
  // A second pin means the first release must not drop the table.
  ASSERT_TRUE(cat.AddTempRef("t").ok());
  auto r1 = cat.ReleaseTempRef("t");
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);
  EXPECT_TRUE(cat.Exists("t"));
  auto r2 = cat.ReleaseTempRef("t");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  EXPECT_FALSE(cat.Exists("t"));
}

TEST(CatalogTest, AddTempRefMultipleAndErrors) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterBase(MakeTable("r", 10)).ok());
  // Base tables are not refcounted temps.
  EXPECT_TRUE(cat.AddTempRef("r").IsInvalidArgument());
  EXPECT_TRUE(cat.AddTempRef("missing").IsNotFound());
  TablePtr t = MakeTable("t", 10);
  ASSERT_TRUE(cat.RegisterTempWithRefs(t, 1).ok());
  EXPECT_TRUE(cat.AddTempRef("t", 0).IsInvalidArgument());
  ASSERT_TRUE(cat.AddTempRef("t", 2).ok());
  for (int i = 0; i < 2; ++i) {
    auto r = cat.ReleaseTempRef("t");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r);
  }
  EXPECT_TRUE(cat.Exists("t"));
  auto last = cat.ReleaseTempRef("t");
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(*last);
}

TEST(CatalogTest, NextTempNameUnique) {
  Catalog cat;
  const std::string n1 = cat.NextTempName("tmp");
  ASSERT_TRUE(cat.RegisterTemp(MakeTable(n1, 1)).ok());
  const std::string n2 = cat.NextTempName("tmp");
  EXPECT_NE(n1, n2);
}

}  // namespace
}  // namespace gbmqo
