// Parallel sub-plan execution: the sub-plans of a logical plan share only
// the immutable base relation, so PlanExecutor can run them on several
// threads. Results must be identical to serial execution, temp tables must
// not leak, and the catalog must survive concurrent register/drop traffic.
#include <gtest/gtest.h>

#include <optional>

#include "common/rng.h"
#include "core/gbmqo.h"
#include "cost/optimizer_cost_model.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

PlanNode Leaf(ColumnSet cols) {
  PlanNode n;
  n.columns = cols;
  n.required = true;
  return n;
}

struct Fixture {
  explicit Fixture(size_t rows = 20000)
      : table(GenerateLineitem({.rows = rows, .seed = 12})), stats(*table),
        whatif(&stats) {
    EXPECT_TRUE(catalog.RegisterBase(table).ok());
  }
  TablePtr table;
  Catalog catalog;
  StatisticsManager stats;
  WhatIfProvider whatif;
};

class ParallelismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelismTest, MatchesSerialExecution) {
  const int workers = GetParam();
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->plan.subplans.size(), 1u) << "need parallelizable forest";

  PlanExecutor serial(&f.catalog, "lineitem");
  auto a = serial.Execute(plan->plan, requests);
  ASSERT_TRUE(a.ok());

  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, workers);
  auto b = parallel.Execute(plan->plan, requests);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a->results.size(), b->results.size());
  for (const auto& [cols, ta] : a->results) {
    const TablePtr& tb = b->results.at(cols);
    ASSERT_EQ(ta->num_rows(), tb->num_rows()) << cols.ToString();
    // Total counts agree.
    const int cnt_a = ta->schema().FindColumn("cnt");
    const int cnt_b = tb->schema().FindColumn("cnt");
    int64_t sum_a = 0, sum_b = 0;
    for (size_t r = 0; r < ta->num_rows(); ++r) {
      sum_a += ta->column(cnt_a).Int64At(r);
    }
    for (size_t r = 0; r < tb->num_rows(); ++r) {
      sum_b += tb->column(cnt_b).Int64At(r);
    }
    EXPECT_EQ(sum_a, sum_b) << cols.ToString();
  }
  // Deterministic work is independent of the thread count.
  EXPECT_EQ(a->counters.rows_scanned, b->counters.rows_scanned);
  EXPECT_EQ(a->counters.rows_emitted, b->counters.rows_emitted);
  EXPECT_EQ(f.catalog.temp_bytes(), 0u) << "temp tables leaked";
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelismTest, ::testing::Values(2, 4, 8));

TEST(ParallelExecutorTest, NaivePlanParallelizesPerQuery) {
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  auto r = parallel.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->results.size(), requests.size());
}

TEST(ParallelExecutorTest, SingleSubPlanFallsBackToSerial) {
  Fixture f;
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kReturnflag})};
  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, 8);
  auto r = parallel.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->results.size(), 1u);
}

TEST(ParallelExecutorTest, RepeatedRunsStayConsistent) {
  // Stress the concurrent catalog register/drop path.
  Fixture f(8000);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, 6);
  for (int i = 0; i < 5; ++i) {
    auto r = parallel.Execute(plan->plan, requests);
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": "
                        << r.status().ToString();
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
  }
}

// ---- fusion x node-parallelism matrix --------------------------------------

/// Field-by-field counter equality, including the XOR scan checksum and the
/// double-valued CPU units (bit-identical, not approximately equal).
void ExpectSameCounters(const WorkCounters& a, const WorkCounters& b) {
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
  EXPECT_EQ(a.rows_emitted, b.rows_emitted);
  EXPECT_EQ(a.bytes_materialized, b.bytes_materialized);
  EXPECT_EQ(a.hash_probes, b.hash_probes);
  EXPECT_EQ(a.rows_sorted, b.rows_sorted);
  EXPECT_EQ(a.queries_executed, b.queries_executed);
  EXPECT_EQ(a.dense_kernel_rows, b.dense_kernel_rows);
  EXPECT_EQ(a.packed_kernel_rows, b.packed_kernel_rows);
  EXPECT_EQ(a.multiword_kernel_rows, b.multiword_kernel_rows);
  EXPECT_EQ(a.sort_kernel_rows, b.sort_kernel_rows);
  EXPECT_EQ(a.queries_spilled, b.queries_spilled);
  EXPECT_EQ(a.spill_bytes_written, b.spill_bytes_written);
  EXPECT_EQ(a.spill_bytes_read, b.spill_bytes_read);
  EXPECT_EQ(a.spill_corrupt_recoveries, b.spill_corrupt_recoveries);
  EXPECT_EQ(a.scan_touch_checksum, b.scan_touch_checksum);
  EXPECT_EQ(a.agg_cpu_units, b.agg_cpu_units);
  EXPECT_EQ(a.tasks_retried, b.tasks_retried);
  EXPECT_EQ(a.tasks_degraded, b.tasks_degraded);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

/// Cell-by-cell result equality: same tables, same row order, same values.
void ExpectIdenticalResults(const ExecutionResult& a,
                            const ExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, ta] : a.results) {
    ASSERT_TRUE(b.results.count(cols)) << cols.ToString();
    const TablePtr& tb = b.results.at(cols);
    ASSERT_EQ(ta->num_rows(), tb->num_rows()) << cols.ToString();
    ASSERT_EQ(ta->schema().num_columns(), tb->schema().num_columns());
    for (int c = 0; c < ta->schema().num_columns(); ++c) {
      for (size_t r = 0; r < ta->num_rows(); ++r) {
        ASSERT_EQ(ta->column(c).ValueAt(r), tb->column(c).ValueAt(r))
            << cols.ToString() << " col " << c << " row " << r;
      }
    }
  }
}

/// Fan-out plan with fusable siblings at two levels: a materialized root
/// whose four plain children share one scan of it, plus a second sub-plan
/// root that can fuse with the first over the base relation.
LogicalPlan FanOutPlan() {
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus, kShipmode};
  root.required = true;
  root.children = {Leaf({kReturnflag}), Leaf({kLinestatus}),
                   Leaf({kShipmode}), Leaf({kReturnflag, kLinestatus})};
  LogicalPlan plan;
  plan.subplans = {root, Leaf({kQuantity})};
  return plan;
}

std::vector<GroupByRequest> FanOutRequests() {
  return {GroupByRequest::Count({kReturnflag, kLinestatus, kShipmode}),
          GroupByRequest::Count({kReturnflag}),
          GroupByRequest::Count({kLinestatus}),
          GroupByRequest::Count({kShipmode}),
          GroupByRequest::Count({kReturnflag, kLinestatus}),
          GroupByRequest::Count({kQuantity})};
}

TEST(FusionMatrixTest, FusionAndWorkersPreserveResultsAndCounters) {
  Fixture f;
  const auto requests = FanOutRequests();
  const LogicalPlan plan = FanOutPlan();
  ASSERT_TRUE(plan.Validate(requests).ok());

  // Baseline: the sequential seed path — no fusion, one task at a time.
  PlanExecutor seq(&f.catalog, "lineitem");
  seq.set_node_parallel(false);
  auto baseline = seq.Execute(plan, requests);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::optional<ExecutionResult> fused_ref;
  for (const bool fusion : {false, true}) {
    for (const int workers : {1, 2, 8}) {
      SCOPED_TRACE("fusion=" + std::to_string(fusion) +
                   " workers=" + std::to_string(workers));
      PlanExecutor exec(&f.catalog, "lineitem", ScanMode::kRowStore, workers);
      exec.set_fusion_enabled(fusion);
      auto r = exec.Execute(plan, requests);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      // Results are bit-identical to the sequential baseline in every cell.
      ExpectIdenticalResults(*baseline, *r);
      EXPECT_EQ(f.catalog.temp_bytes(), 0u);
      if (!fusion) {
        // Unfused cells match the baseline counters exactly.
        ExpectSameCounters(baseline->counters, r->counters);
      } else if (!fused_ref.has_value()) {
        // First fused cell becomes the fused reference: fewer scanned rows
        // than one scan per plan edge, same emitted rows.
        EXPECT_LT(r->counters.rows_scanned, baseline->counters.rows_scanned);
        EXPECT_EQ(r->counters.rows_emitted, baseline->counters.rows_emitted);
        fused_ref = std::move(*r);
      } else {
        // Fused counters are bit-identical across worker counts.
        ExpectSameCounters(fused_ref->counters, r->counters);
      }
    }
  }
}

// ---- storage-aware admission gate ------------------------------------------

/// Base table for exact storage accounting: every column a non-nullable
/// int64 and every aggregate COUNT(*), so a materialized GROUP BY holds
/// exactly 8 * (columns + 1) bytes per distinct group — and with exact
/// statistics the what-if estimate equals the realized ByteSize.
TablePtr MakeWideTable(size_t rows) {
  Schema schema({{"c0", DataType::kInt64, false},
                 {"c1", DataType::kInt64, false},
                 {"c2", DataType::kInt64, false}});
  TableBuilder b(schema);
  Rng rng(99);
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(100))),
                             Value(static_cast<int64_t>(rng.Uniform(90))),
                             Value(static_cast<int64_t>(rng.Uniform(80)))})
                    .ok());
  }
  return *b.Build("wide");
}

/// Root {c0,c1,c2} with three materialized pair children, each serving one
/// single-column leaf. The pairs are fusable siblings over the root.
LogicalPlan WidePlan() {
  PlanNode c01;
  c01.columns = {0, 1};
  c01.required = true;
  c01.children = {Leaf({0})};
  PlanNode c12;
  c12.columns = {1, 2};
  c12.required = true;
  c12.children = {Leaf({1})};
  PlanNode c02;
  c02.columns = {0, 2};
  c02.required = true;
  c02.children = {Leaf({2})};
  PlanNode root;
  root.columns = {0, 1, 2};
  root.required = true;
  root.children = {c01, c12, c02};
  LogicalPlan plan;
  plan.subplans = {root};
  return plan;
}

std::vector<GroupByRequest> WideRequests() {
  return {GroupByRequest::Count({0, 1, 2}), GroupByRequest::Count({0, 1}),
          GroupByRequest::Count({1, 2}),    GroupByRequest::Count({0, 2}),
          GroupByRequest::Count({0}),       GroupByRequest::Count({1}),
          GroupByRequest::Count({2})};
}

TEST(StorageBudgetTest, AdmissionGateKeepsPeakUnderBudget) {
  TablePtr t = MakeWideTable(60000);
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);

  const auto requests = WideRequests();
  LogicalPlan plan = WidePlan();
  ASSERT_TRUE(plan.Validate(requests).ok());
  const double budget = SchedulePlanStorage(&plan, &whatif);
  ASSERT_GT(budget, 0.0);

  // Ungated, fused: the shared-scan task registers all three pair tables
  // before the root can drop, so the realized peak deterministically
  // exceeds the scheduled bound for any worker count.
  PlanExecutor ungated(&catalog, "wide");
  ungated.set_fusion_enabled(true);
  auto over = ungated.Execute(plan, requests);
  ASSERT_TRUE(over.ok()) << over.status().ToString();
  EXPECT_GT(static_cast<double>(over->peak_temp_bytes), budget);

  // Gated at the SchedulePlanStorage bound with node parallelism: the
  // admission gate defers pair siblings instead of letting them pile up, so
  // the realized peak never exceeds the scheduled estimate.
  PlanExecutor gated(&catalog, "wide", ScanMode::kRowStore, 4);
  gated.set_storage_budget(budget, &whatif);
  auto under = gated.Execute(plan, requests);
  ASSERT_TRUE(under.ok()) << under.status().ToString();
  EXPECT_LE(static_cast<double>(under->peak_temp_bytes), budget);
  EXPECT_EQ(catalog.temp_bytes(), 0u);

  // Gating changes scheduling only, never answers.
  ExpectIdenticalResults(*over, *under);
}

TEST(StorageBudgetTest, RealizedPeakMatchesEstimateExactly) {
  // With exact statistics over all-int64 data the Section 4.4 estimate is
  // not just a bound: the sequential DF execution realizes it to the byte.
  TablePtr t = MakeWideTable(60000);
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);

  const auto requests = WideRequests();
  LogicalPlan plan = WidePlan();
  ASSERT_TRUE(plan.Validate(requests).ok());
  const double scheduled = SchedulePlanStorage(&plan, &whatif);

  PlanExecutor exec(&catalog, "wide");
  exec.set_node_parallel(false);
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(static_cast<double>(r->peak_temp_bytes), scheduled);
}

}  // namespace
}  // namespace gbmqo
