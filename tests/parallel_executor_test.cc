// Parallel sub-plan execution: the sub-plans of a logical plan share only
// the immutable base relation, so PlanExecutor can run them on several
// threads. Results must be identical to serial execution, temp tables must
// not leak, and the catalog must survive concurrent register/drop traffic.
#include <gtest/gtest.h>

#include "core/gbmqo.h"
#include "cost/optimizer_cost_model.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

struct Fixture {
  explicit Fixture(size_t rows = 20000)
      : table(GenerateLineitem({.rows = rows, .seed = 12})), stats(*table),
        whatif(&stats) {
    EXPECT_TRUE(catalog.RegisterBase(table).ok());
  }
  TablePtr table;
  Catalog catalog;
  StatisticsManager stats;
  WhatIfProvider whatif;
};

class ParallelismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelismTest, MatchesSerialExecution) {
  const int workers = GetParam();
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->plan.subplans.size(), 1u) << "need parallelizable forest";

  PlanExecutor serial(&f.catalog, "lineitem");
  auto a = serial.Execute(plan->plan, requests);
  ASSERT_TRUE(a.ok());

  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, workers);
  auto b = parallel.Execute(plan->plan, requests);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a->results.size(), b->results.size());
  for (const auto& [cols, ta] : a->results) {
    const TablePtr& tb = b->results.at(cols);
    ASSERT_EQ(ta->num_rows(), tb->num_rows()) << cols.ToString();
    // Total counts agree.
    const int cnt_a = ta->schema().FindColumn("cnt");
    const int cnt_b = tb->schema().FindColumn("cnt");
    int64_t sum_a = 0, sum_b = 0;
    for (size_t r = 0; r < ta->num_rows(); ++r) {
      sum_a += ta->column(cnt_a).Int64At(r);
    }
    for (size_t r = 0; r < tb->num_rows(); ++r) {
      sum_b += tb->column(cnt_b).Int64At(r);
    }
    EXPECT_EQ(sum_a, sum_b) << cols.ToString();
  }
  // Deterministic work is independent of the thread count.
  EXPECT_EQ(a->counters.rows_scanned, b->counters.rows_scanned);
  EXPECT_EQ(a->counters.rows_emitted, b->counters.rows_emitted);
  EXPECT_EQ(f.catalog.temp_bytes(), 0u) << "temp tables leaked";
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelismTest, ::testing::Values(2, 4, 8));

TEST(ParallelExecutorTest, NaivePlanParallelizesPerQuery) {
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, 4);
  auto r = parallel.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->results.size(), requests.size());
}

TEST(ParallelExecutorTest, SingleSubPlanFallsBackToSerial) {
  Fixture f;
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({kReturnflag})};
  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, 8);
  auto r = parallel.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->results.size(), 1u);
}

TEST(ParallelExecutorTest, RepeatedRunsStayConsistent) {
  // Stress the concurrent catalog register/drop path.
  Fixture f(8000);
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  OptimizerCostModel model(*f.table);
  GbMqoOptimizer opt(&model, &f.whatif);
  auto plan = opt.Optimize(requests);
  ASSERT_TRUE(plan.ok());
  PlanExecutor parallel(&f.catalog, "lineitem", ScanMode::kRowStore, 6);
  for (int i = 0; i < 5; ++i) {
    auto r = parallel.Execute(plan->plan, requests);
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": "
                        << r.status().ToString();
    EXPECT_EQ(f.catalog.temp_bytes(), 0u);
  }
}

}  // namespace
}  // namespace gbmqo
