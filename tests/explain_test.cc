#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "cost/optimizer_cost_model.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

struct Fixture {
  Fixture() : table(GenerateLineitem({.rows = 3000})), stats(*table),
              whatif(&stats), model(*table) {}
  TablePtr table;
  StatisticsManager stats;
  WhatIfProvider whatif;
  OptimizerCostModel model;
};

TEST(ExplainTest, RendersNaivePlan) {
  Fixture f;
  auto requests = SingleColumnRequests({kReturnflag, kShipmode});
  const std::string out = ExplainPlan(NaivePlan(requests), f.table->schema(),
                                      &f.model, &f.whatif);
  EXPECT_NE(out.find("R (3000 rows"), std::string::npos);
  EXPECT_NE(out.find("{l_returnflag}*"), std::string::npos);
  EXPECT_NE(out.find("{l_shipmode}*"), std::string::npos);
  EXPECT_NE(out.find("rows≈3"), std::string::npos);  // returnflag has 3
  // Leaves are not spooled.
  EXPECT_EQ(out.find("spool"), std::string::npos);
}

TEST(ExplainTest, RendersOptimizedPlanWithSpoolsAndMarks) {
  Fixture f;
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  GbMqoOptimizer opt(&f.model, &f.whatif);
  auto r = opt.Optimize(requests);
  ASSERT_TRUE(r.ok());
  const std::string out =
      ExplainPlan(r->plan, f.table->schema(), &f.model, &f.whatif);
  // The optimized lineitem plan materializes at least one intermediate.
  EXPECT_NE(out.find("spool≈"), std::string::npos);
  EXPECT_TRUE(out.find("[DF]") != std::string::npos ||
              out.find("[BF]") != std::string::npos);
  EXPECT_NE(out.find("total-cost≈"), std::string::npos);
  // Tree glyphs present.
  EXPECT_NE(out.find("└─"), std::string::npos);
}

TEST(ExplainTest, RendersCubeAndRollup) {
  Fixture f;
  LogicalPlan plan;
  PlanNode cube;
  cube.columns = {kReturnflag, kLinestatus};
  cube.kind = NodeKind::kCube;
  cube.required = true;
  plan.subplans.push_back(cube);
  PlanNode rollup;
  rollup.columns = {kShipdate, kShipmode};
  rollup.kind = NodeKind::kRollup;
  rollup.rollup_order = {kShipdate, kShipmode};
  rollup.required = true;
  plan.subplans.push_back(rollup);
  const std::string out =
      ExplainPlan(plan, f.table->schema(), &f.model, &f.whatif);
  EXPECT_NE(out.find("CUBE {l_returnflag,l_linestatus}"), std::string::npos);
  EXPECT_NE(out.find("ROLLUP {l_shipdate,l_shipmode}"), std::string::npos);
}

}  // namespace
}  // namespace gbmqo
