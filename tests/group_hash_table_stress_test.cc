// Adversarial GroupHashTable tests locking in the invariants the parallel
// merge path relies on: linear-probing behaviour under engineered
// collisions, growth exactly at the 70% load boundary, multi-word key
// equality, probe-count monotonicity, and MergeFrom partition
// disjointness/completeness.
#include "exec/group_hash_table.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

namespace gbmqo {
namespace {

/// Finds `count` distinct single-word keys whose hash lands on slot
/// `target` of a `capacity`-slot table (capacity is a power of two).
std::vector<uint64_t> CollidingKeys(size_t capacity, size_t target,
                                    size_t count) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; keys.size() < count; ++k) {
    if ((GroupHashTable::Hash(&k, 1) & (capacity - 1)) == target) {
      keys.push_back(k);
    }
  }
  return keys;
}

TEST(GroupHashTableStressTest, EngineeredCollisionsProbeLinearly) {
  // All keys hash to the same slot of a 4096-slot table (no growth at 64
  // entries), so the i-th insert walks an i-long cluster: probes are
  // exactly 1 + 2 + ... + m = m(m+1)/2.
  constexpr size_t kCapacity = 4096;
  constexpr size_t kKeys = 64;
  GroupHashTable table(1, kCapacity);
  ASSERT_EQ(table.slot_capacity(), kCapacity);
  const std::vector<uint64_t> keys = CollidingKeys(kCapacity, 7, kKeys);

  for (size_t i = 0; i < keys.size(); ++i) {
    bool inserted = false;
    EXPECT_EQ(table.FindOrInsert(&keys[i], &inserted), i);
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(table.size(), kKeys);
  EXPECT_EQ(table.slot_capacity(), kCapacity);  // no growth happened
  EXPECT_EQ(table.probes(), kKeys * (kKeys + 1) / 2);

  // Re-looking up key i walks the same i+1 slots and inserts nothing.
  const uint64_t before = table.probes();
  bool inserted = true;
  EXPECT_EQ(table.FindOrInsert(&keys[10], &inserted), 10u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(table.probes(), before + 11);
}

TEST(GroupHashTableStressTest, GrowsExactlyAtSeventyPercentLoad) {
  // 16 slots hold at most 11 groups (11/16 = 68.75% <= 70% < 12/16); the
  // 12th insert must double the capacity first.
  GroupHashTable table(1, 16);
  ASSERT_EQ(table.slot_capacity(), 16u);
  for (uint64_t k = 0; k < 11; ++k) {
    table.FindOrInsert(&k);
  }
  EXPECT_EQ(table.size(), 11u);
  EXPECT_EQ(table.slot_capacity(), 16u);
  uint64_t k = 11;
  table.FindOrInsert(&k);
  EXPECT_EQ(table.size(), 12u);
  EXPECT_EQ(table.slot_capacity(), 32u);
}

TEST(GroupHashTableStressTest, LoadFactorInvariantHoldsThroughGrowth) {
  // After every insert: size() * 10 <= slot_capacity() * 7, ids stay dense,
  // and stored keys remain retrievable across rehashes.
  GroupHashTable table(1, 16);
  size_t capacity = table.slot_capacity();
  int growths = 0;
  for (uint64_t k = 0; k < 3000; ++k) {
    const uint32_t id = table.FindOrInsert(&k);
    ASSERT_EQ(id, k);
    ASSERT_LE(table.size() * 10, table.slot_capacity() * 7);
    if (table.slot_capacity() != capacity) {
      ASSERT_EQ(table.slot_capacity(), capacity * 2) << "non-doubling growth";
      capacity = table.slot_capacity();
      ++growths;
    }
  }
  EXPECT_GT(growths, 5);
  for (uint64_t k = 0; k < 3000; ++k) {
    bool inserted = true;
    ASSERT_EQ(table.FindOrInsert(&k, &inserted), k);
    ASSERT_FALSE(inserted);
    ASSERT_EQ(*table.KeyOf(static_cast<uint32_t>(k)), k);
  }
  EXPECT_EQ(table.size(), 3000u);
}

TEST(GroupHashTableStressTest, MultiWordKeysCompareAllWords) {
  // Keys differing only in the first or only in the last word must stay
  // distinct groups; full-width re-lookups must return the original ids.
  constexpr int kWidth = 3;
  GroupHashTable table(kWidth);
  std::vector<std::vector<uint64_t>> keys;
  for (uint64_t v = 0; v < 50; ++v) {
    keys.push_back({v, 1, 2});    // vary first word
    keys.push_back({0, 1, v + 3});  // vary last word
  }
  std::vector<uint32_t> ids;
  for (const auto& key : keys) {
    ids.push_back(table.FindOrInsert(key.data()));
  }
  EXPECT_EQ(table.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    bool inserted = true;
    EXPECT_EQ(table.FindOrInsert(keys[i].data(), &inserted), ids[i]);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(0, std::memcmp(table.KeyOf(ids[i]), keys[i].data(),
                             sizeof(uint64_t) * kWidth));
  }
}

TEST(GroupHashTableStressTest, ProbesStrictlyMonotonic) {
  GroupHashTable table(2);
  uint64_t last = table.probes();
  EXPECT_EQ(last, 0u);
  for (uint64_t k = 0; k < 2000; ++k) {
    const uint64_t key[2] = {k % 37, k};  // mix of hits and misses
    table.FindOrInsert(key);
    const uint64_t now = table.probes();
    ASSERT_GE(now, last + 1) << "FindOrInsert must cost at least one probe";
    last = now;
  }
}

TEST(GroupHashTableStressTest, PartitionOfHashIsInRangeAndStable) {
  for (uint64_t k = 0; k < 1000; ++k) {
    const uint64_t h = GroupHashTable::Hash(&k, 1);
    EXPECT_EQ(GroupHashTable::PartitionOfHash(h, 1), 0);
    for (int p : {2, 4, 16}) {
      const int part = GroupHashTable::PartitionOfHash(h, p);
      ASSERT_GE(part, 0);
      ASSERT_LT(part, p);
    }
  }
}

TEST(GroupHashTableStressTest, MergeFromPartitionsAreDisjointAndComplete) {
  // Build a source table with keys engineered to include collisions, then
  // merge it partition by partition: every src id must be taken exactly
  // once, and the destination must end up with exactly the src's key set.
  constexpr int kPartitions = 16;
  GroupHashTable src(1, 4096);
  const std::vector<uint64_t> colliding = CollidingKeys(4096, 11, 32);
  for (uint64_t k : colliding) src.FindOrInsert(&k);
  for (uint64_t k = 1000000; k < 1002000; ++k) src.FindOrInsert(&k);
  const size_t n = src.size();

  GroupHashTable dst(1, 64);
  std::map<uint32_t, int> times_taken;
  size_t total = 0;
  for (int p = 0; p < kPartitions; ++p) {
    std::vector<std::pair<uint32_t, uint32_t>> mapping;
    const size_t taken = dst.MergeFrom(src, kPartitions, p, &mapping);
    EXPECT_EQ(taken, mapping.size());
    total += taken;
    for (const auto& [src_id, dst_id] : mapping) {
      times_taken[src_id] += 1;
      // The merged group's key must be byte-identical to the source's, and
      // its partition must be the one we asked for.
      EXPECT_EQ(*dst.KeyOf(dst_id), *src.KeyOf(src_id));
      EXPECT_EQ(src.PartitionOf(src_id, kPartitions), p);
    }
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(dst.size(), n);  // all keys distinct, none lost or duplicated
  EXPECT_EQ(times_taken.size(), n);
  for (const auto& [id, count] : times_taken) {
    ASSERT_EQ(count, 1) << "src id " << id << " merged more than once";
  }
}

TEST(GroupHashTableStressTest, MergeFromDeduplicatesAcrossSources) {
  // Two sources sharing half their keys: the merged table must contain the
  // set union, with shared keys mapped to one id.
  GroupHashTable a(1), b(1);
  for (uint64_t k = 0; k < 400; ++k) a.FindOrInsert(&k);
  for (uint64_t k = 200; k < 600; ++k) b.FindOrInsert(&k);

  GroupHashTable dst(1);
  std::set<uint32_t> dst_ids;
  for (int p = 0; p < 8; ++p) {
    std::vector<std::pair<uint32_t, uint32_t>> mapping;
    dst.MergeFrom(a, 8, p, &mapping);
    dst.MergeFrom(b, 8, p, &mapping);
    for (const auto& [src_id, dst_id] : mapping) dst_ids.insert(dst_id);
  }
  EXPECT_EQ(dst.size(), 600u);
  EXPECT_EQ(dst_ids.size(), 600u);
}

}  // namespace
}  // namespace gbmqo
