#include "common/str_util.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
  EXPECT_EQ(Trim("\t\na\r "), "a");
}

TEST(StrUtilTest, SplitAndTrim) {
  auto parts = SplitAndTrim("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, SplitDropsEmptyPieces) {
  auto parts = SplitAndTrim(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StrUtilTest, SplitEmptyString) {
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
  EXPECT_TRUE(SplitAndTrim("  ", ',').empty());
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GROUP BY", "group by"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
}

TEST(StrUtilTest, ToLower) {
  EXPECT_EQ(ToLower("GrOuPiNg SeTs"), "grouping sets");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace gbmqo
