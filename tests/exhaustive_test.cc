#include "core/exhaustive.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/optimizer_cost_model.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

struct Fixture {
  Fixture() : table(GenerateLineitem({.rows = 4000, .seed = 17})),
              stats(*table),
              whatif(&stats) {}
  TablePtr table;
  StatisticsManager stats;
  WhatIfProvider whatif;
};

TEST(ExhaustiveTest, OptimalAtMostGreedyAtMostNaive) {
  Fixture f;
  auto requests = SingleColumnRequests(
      {kQuantity, kReturnflag, kLinestatus, kShipdate, kCommitdate,
       kReceiptdate, kShipmode});

  OptimizerCostModel gm(*f.table);
  GbMqoOptimizer greedy(&gm, &f.whatif);
  auto gr = greedy.Optimize(requests);
  ASSERT_TRUE(gr.ok());

  OptimizerCostModel em(*f.table);
  ExhaustiveOptimizer exhaustive(&em, &f.whatif);
  auto er = exhaustive.Optimize(requests);
  ASSERT_TRUE(er.ok()) << er.status().ToString();

  EXPECT_LE(er->cost, gr->cost + 1e-6);
  EXPECT_LE(gr->cost, gr->naive_cost + 1e-6);
  EXPECT_DOUBLE_EQ(er->naive_cost, gr->naive_cost);
}

TEST(ExhaustiveTest, ReconstructedPlanPricesAtReportedCost) {
  Fixture f;
  auto requests = SingleColumnRequests(
      {kQuantity, kReturnflag, kShipdate, kCommitdate, kShipmode});
  OptimizerCostModel model(*f.table);
  ExhaustiveOptimizer exhaustive(&model, &f.whatif);
  auto r = exhaustive.Optimize(requests);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->plan.Validate(requests).ok());
  EXPECT_NEAR(r->cost, CostPlan(r->plan, &model, &f.whatif),
              1e-6 * (1 + r->cost));
}

TEST(ExhaustiveTest, TwoIdenticalDistributionsMerge) {
  // Two perfectly correlated columns: optimal plan shares an intermediate.
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"u", DataType::kInt64, false}}));
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Uniform(16));
    ASSERT_TRUE(
        b.AppendRow({Value(a), Value(a + 1), Value(static_cast<int64_t>(i))})
            .ok());
  }
  TablePtr t = *b.Build("r");
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*t);
  ExhaustiveOptimizer exhaustive(&model, &whatif);
  auto requests = SingleColumnRequests({0, 1, 2});
  auto r = exhaustive.Optimize(requests);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->cost, r->naive_cost);
  // Expect (a,b) shared and (u) direct: two sub-plans.
  ASSERT_EQ(r->plan.subplans.size(), 2u);
}

TEST(ExhaustiveTest, RequestEqualToUnionServedByNode) {
  // Requests {(a),(b),(a,b)}: the optimal plan materializes (a,b) once,
  // serves the pair request from it, and computes (a),(b) from it.
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false}}));
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(10))),
                             Value(static_cast<int64_t>(rng.Uniform(10)))})
                    .ok());
  }
  TablePtr t = *b.Build("r");
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*t);
  ExhaustiveOptimizer exhaustive(&model, &whatif);
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({0}),
                                          GroupByRequest::Count({1}),
                                          GroupByRequest::Count({0, 1})};
  auto r = exhaustive.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->plan.subplans.size(), 1u);
  const PlanNode& root = r->plan.subplans[0];
  EXPECT_EQ(root.columns, (ColumnSet{0, 1}));
  EXPECT_TRUE(root.required);
  EXPECT_EQ(root.children.size(), 2u);
}

TEST(ExhaustiveTest, GreedyOftenMatchesOptimalOnSmallInputs) {
  // Not a guarantee (hill climbing is heuristic), but on independent
  // uniform columns the ratio should be close to 1 — this also guards
  // against the exhaustive DP being accidentally *worse* than greedy.
  Fixture f;
  Rng rng(31);
  const std::vector<int> pool = LineitemAnalysisColumns();
  int matches = 0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<int> cols;
    std::vector<int> shuffled = pool;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
    }
    cols.assign(shuffled.begin(), shuffled.begin() + 5);
    auto requests = SingleColumnRequests(cols);
    OptimizerCostModel gm(*f.table), em(*f.table);
    auto gr = GbMqoOptimizer(&gm, &f.whatif).Optimize(requests);
    auto er = ExhaustiveOptimizer(&em, &f.whatif).Optimize(requests);
    ASSERT_TRUE(gr.ok());
    ASSERT_TRUE(er.ok());
    EXPECT_LE(er->cost, gr->cost + 1e-6);
    EXPECT_LE(gr->cost, er->cost * 1.5) << "greedy far from optimal";
    if (gr->cost <= er->cost * 1.10) ++matches;
  }
  EXPECT_GE(matches, 3) << "greedy should be near-optimal most of the time";
}

TEST(ExhaustiveTest, RejectsTooManyRequests) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  ExhaustiveOptimizer exhaustive(&model, &f.whatif);
  std::vector<GroupByRequest> requests;
  for (int i = 0; i < ExhaustiveOptimizer::kMaxRequests + 1; ++i) {
    requests.push_back(GroupByRequest::Count(ColumnSet{i % 16}));
  }
  // (duplicates aside, the size check fires first for a clearly long list)
  auto r = exhaustive.Optimize(requests);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace gbmqo
