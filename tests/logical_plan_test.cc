#include "core/logical_plan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/optimizer.h"
#include "cost/optimizer_cost_model.h"

namespace gbmqo {
namespace {

// Synthetic what-if: cardinality of a set = product of per-column distinct
// counts, capped at the row count (an "independent columns" world).
class FakeWhatIf : public WhatIfProvider {
 public:
  FakeWhatIf(double rows, std::vector<double> per_column_distinct,
             StatisticsManager* stats)
      : WhatIfProvider(stats), rows_(rows), distinct_(per_column_distinct) {}

  NodeDesc Root() const override {
    NodeDesc d;
    d.columns = ColumnSet::FirstN(static_cast<int>(distinct_.size()));
    d.rows = rows_;
    d.row_width = 8.0 * static_cast<double>(distinct_.size());
    d.is_root = true;
    return d;
  }

  NodeDesc Describe(ColumnSet columns, int num_aggs = 1) override {
    double card = 1;
    for (int c : columns.ToVector()) card *= distinct_[static_cast<size_t>(c)];
    NodeDesc d;
    d.columns = columns;
    d.rows = std::min(card, rows_);
    d.row_width = 8.0 * columns.size() + 8.0 * num_aggs;
    return d;
  }

 private:
  double rows_;
  std::vector<double> distinct_;
};

// Minimal real table so StatisticsManager has something to reference (the
// FakeWhatIf never consults it).
struct Fixture {
  Fixture()
      : table(MakeTable()),
        stats(*table),
        whatif(1e6, {10, 20, 30, 40}, &stats) {}

  static TablePtr MakeTable() {
    TableBuilder b(Schema({{"a", DataType::kInt64, false},
                           {"b", DataType::kInt64, false},
                           {"c", DataType::kInt64, false},
                           {"d", DataType::kInt64, false}}));
    EXPECT_TRUE(b.AppendRow({Value(1), Value(2), Value(3), Value(4)}).ok());
    return *b.Build("r");
  }

  TablePtr table;
  StatisticsManager stats;
  FakeWhatIf whatif;
};

PlanNode Leaf(ColumnSet cols) {
  PlanNode n;
  n.columns = cols;
  n.required = true;
  return n;
}

TEST(PlanNodeTest, ToStringRendersTree) {
  PlanNode root;
  root.columns = {0, 1};
  root.children = {Leaf({0}), Leaf({1})};
  EXPECT_EQ(root.ToString(), "{0,1}[{0}*,{1}*]");
  LogicalPlan plan;
  plan.subplans = {root};
  EXPECT_EQ(plan.ToString(), "R[{0,1}[{0}*,{1}*]]");
  EXPECT_EQ(plan.NumNodes(), 3);
}

TEST(PlanValidateTest, NaivePlanValidates) {
  auto requests = SingleColumnRequests({0, 1, 2});
  LogicalPlan plan = NaivePlan(requests);
  EXPECT_TRUE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, MissingRequestRejected) {
  auto requests = SingleColumnRequests({0, 1});
  LogicalPlan plan = NaivePlan(SingleColumnRequests({0}));
  EXPECT_FALSE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, ChildMustBeStrictSubset) {
  auto requests = SingleColumnRequests({0});
  LogicalPlan plan;
  PlanNode root;
  root.columns = {1};
  root.children = {Leaf({0})};  // {0} ⊄ {1}
  plan.subplans = {root};
  EXPECT_FALSE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, DuplicateRequiredRejected) {
  auto requests = SingleColumnRequests({0});
  LogicalPlan plan;
  plan.subplans = {Leaf({0}), Leaf({0})};
  EXPECT_FALSE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, ParentMustCarryChildAggregates) {
  std::vector<GroupByRequest> requests = {
      {ColumnSet{0}, {AggRequest{AggKind::kSum, 3}}}};
  LogicalPlan plan;
  PlanNode root;
  root.columns = {0, 1};
  root.aggs = {AggRequest{}};  // carries only COUNT(*)
  PlanNode leaf;
  leaf.columns = {0};
  leaf.required = true;
  leaf.aggs = {AggRequest{AggKind::kSum, 3}};
  root.children = {leaf};
  plan.subplans = {root};
  EXPECT_FALSE(plan.Validate(requests).ok());
  // Fixing the parent's aggregates makes it valid.
  plan.subplans[0].aggs = {AggRequest{}, AggRequest{AggKind::kSum, 3}};
  EXPECT_TRUE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, RollupOrderMustMatchColumns) {
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({0, 1})};
  LogicalPlan plan;
  PlanNode rollup;
  rollup.columns = {0, 1};
  rollup.kind = NodeKind::kRollup;
  rollup.rollup_order = {0};  // inconsistent
  PlanNode leaf = Leaf({0, 1});
  rollup.children = {leaf};
  plan.subplans = {rollup};
  EXPECT_FALSE(plan.Validate(requests).ok());
  plan.subplans[0].rollup_order = {0, 1};
  EXPECT_TRUE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, RollupChildMustBePrefix) {
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({1})};
  LogicalPlan plan;
  PlanNode rollup;
  rollup.columns = {0, 1};
  rollup.kind = NodeKind::kRollup;
  rollup.rollup_order = {0, 1};
  rollup.children = {Leaf({1})};  // {1} is not a prefix of (0,1)
  plan.subplans = {rollup};
  EXPECT_FALSE(plan.Validate(requests).ok());
}

TEST(PlanValidateTest, CubeChildrenMustBeLeaves) {
  std::vector<GroupByRequest> requests = {GroupByRequest::Count({0})};
  LogicalPlan plan;
  PlanNode cube;
  cube.columns = {0, 1};
  cube.kind = NodeKind::kCube;
  PlanNode child = Leaf({0});
  child.children = {Leaf({0})};  // nested under a cube child
  cube.children = {child};
  plan.subplans = {cube};
  EXPECT_FALSE(plan.Validate(requests).ok());
}

TEST(PlanCostTest, CardinalityModelMatchesHandComputation) {
  // Paper Figure 2: P1 computes (A),(B),(C),(AC) each from R -> 4|R|.
  // P2 computes (AB) and (AC) from R, then (A),(B) from (AB) and (C) from
  // (AC) -> 2|R| + 2|AB| + |AC|.
  Fixture f;
  CardinalityCostModel model;
  auto requests = std::vector<GroupByRequest>{
      GroupByRequest::Count({0}), GroupByRequest::Count({1}),
      GroupByRequest::Count({2}), GroupByRequest::Count({0, 2})};

  LogicalPlan p1 = NaivePlan(requests);
  EXPECT_DOUBLE_EQ(CostPlan(p1, &model, &f.whatif), 4e6);

  LogicalPlan p2;
  PlanNode ab;
  ab.columns = {0, 1};
  ab.children = {Leaf({0}), Leaf({1})};
  PlanNode ac = Leaf({0, 2});
  ac.children.push_back(Leaf({2}));
  p2.subplans = {ab, ac};
  ASSERT_TRUE(p2.Validate(requests).ok());
  // |AB| = 10*20 = 200, |AC| = 10*30 = 300.
  EXPECT_DOUBLE_EQ(CostPlan(p2, &model, &f.whatif), 2e6 + 2 * 200 + 300);
}

TEST(PlanCostTest, MaterializationChargedForInteriorNodes) {
  Fixture f;
  OptimizerCostModel model(*f.table);
  auto requests = SingleColumnRequests({0, 1});
  LogicalPlan naive = NaivePlan(requests);
  LogicalPlan merged;
  PlanNode root;
  root.columns = {0, 1};
  root.children = {Leaf({0}), Leaf({1})};
  merged.subplans = {root};
  // Merged plan must include the AB materialization cost; with tiny |AB|
  // (200 rows vs 1M) it still wins.
  const double naive_cost = CostPlan(naive, &model, &f.whatif);
  const double merged_cost = CostPlan(merged, &model, &f.whatif);
  EXPECT_LT(merged_cost, naive_cost);
}

TEST(PlanCostTest, CubeCostExceedsSingleGroupBy) {
  Fixture f;
  CardinalityCostModel model;
  PlanNode plain;
  plain.columns = {0, 1};
  plain.required = true;

  PlanNode cube;
  cube.columns = {0, 1};
  cube.kind = NodeKind::kCube;
  cube.required = true;

  const NodeDesc root = f.whatif.Root();
  const double plain_cost = CostSubPlan(plain, root, &model, &f.whatif);
  const double cube_cost = CostSubPlan(cube, root, &model, &f.whatif);
  EXPECT_GT(cube_cost, plain_cost);
}

TEST(PlanCostTest, RollupCheaperThanCubeSameSet) {
  Fixture f;
  CardinalityCostModel model;
  PlanNode cube;
  cube.columns = {0, 1, 2};
  cube.kind = NodeKind::kCube;
  PlanNode rollup = cube;
  rollup.kind = NodeKind::kRollup;
  rollup.rollup_order = {0, 1, 2};
  const NodeDesc root = f.whatif.Root();
  EXPECT_LT(CostSubPlan(rollup, root, &model, &f.whatif),
            CostSubPlan(cube, root, &model, &f.whatif));
}

TEST(PlanCostTest, DeeperSharingReducesCardinalityCost) {
  // Under the cardinality model, computing (A) and (B) from (AB) costs
  // 2|AB| instead of 2|R| after the shared |R| scan.
  Fixture f;
  CardinalityCostModel model;
  auto requests = SingleColumnRequests({0, 1});
  LogicalPlan naive = NaivePlan(requests);
  LogicalPlan shared;
  PlanNode ab;
  ab.columns = {0, 1};
  ab.children = {Leaf({0}), Leaf({1})};
  shared.subplans = {ab};
  EXPECT_DOUBLE_EQ(CostPlan(naive, &model, &f.whatif), 2e6);
  EXPECT_DOUBLE_EQ(CostPlan(shared, &model, &f.whatif), 1e6 + 2 * 200);
}

}  // namespace
}  // namespace gbmqo
