#include "exec/predicate.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TablePtr MakeTable() {
  TableBuilder b(Schema({{"i", DataType::kInt64, true},
                         {"d", DataType::kDouble, false},
                         {"s", DataType::kString, false}}));
  EXPECT_TRUE(b.AppendRow({Value(1), Value(1.5), Value("apple")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value(2.5), Value("banana")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(Null{}), Value(3.5), Value("cherry")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(4), Value(4.5), Value("apple")}).ok());
  return *b.Build("t");
}

TEST(PredicateTest, TrueMatchesEverything) {
  TablePtr t = MakeTable();
  Predicate p;
  EXPECT_TRUE(p.is_true());
  for (size_t i = 0; i < t->num_rows(); ++i) EXPECT_TRUE(p.Matches(*t, i));
}

TEST(PredicateTest, NumericComparisons) {
  TablePtr t = MakeTable();
  Predicate ge;
  ge.And({0, CompareOp::kGe, Value(2)});
  EXPECT_FALSE(ge.Matches(*t, 0));
  EXPECT_TRUE(ge.Matches(*t, 1));
  EXPECT_TRUE(ge.Matches(*t, 3));

  Predicate lt;
  lt.And({1, CompareOp::kLt, Value(3.0)});
  EXPECT_TRUE(lt.Matches(*t, 0));
  EXPECT_FALSE(lt.Matches(*t, 2));
}

TEST(PredicateTest, NullNeverMatches) {
  TablePtr t = MakeTable();
  Predicate any;
  any.And({0, CompareOp::kNe, Value(999)});
  EXPECT_FALSE(any.Matches(*t, 2));  // row 2 has NULL i
}

TEST(PredicateTest, StringComparisons) {
  TablePtr t = MakeTable();
  Predicate eq;
  eq.And({2, CompareOp::kEq, Value("apple")});
  EXPECT_TRUE(eq.Matches(*t, 0));
  EXPECT_FALSE(eq.Matches(*t, 1));
  EXPECT_TRUE(eq.Matches(*t, 3));
}

TEST(PredicateTest, ConjunctionAndsAll) {
  TablePtr t = MakeTable();
  Predicate p;
  p.And({2, CompareOp::kEq, Value("apple")})
      .And({0, CompareOp::kGt, Value(2)});
  EXPECT_FALSE(p.Matches(*t, 0));  // apple but i=1
  EXPECT_TRUE(p.Matches(*t, 3));   // apple and i=4
}

TEST(PredicateTest, ValidateCatchesTypeErrors) {
  TablePtr t = MakeTable();
  Predicate bad_type;
  bad_type.And({2, CompareOp::kEq, Value(1)});  // string col vs int
  EXPECT_FALSE(bad_type.Validate(t->schema()).ok());
  Predicate bad_col;
  bad_col.And({9, CompareOp::kEq, Value(1)});
  EXPECT_FALSE(bad_col.Validate(t->schema()).ok());
  Predicate null_literal;
  null_literal.And({0, CompareOp::kEq, Value(Null{})});
  EXPECT_FALSE(null_literal.Validate(t->schema()).ok());
}

TEST(PredicateTest, ToString) {
  TablePtr t = MakeTable();
  Predicate p;
  p.And({0, CompareOp::kGe, Value(10)}).And({2, CompareOp::kEq, Value("x")});
  EXPECT_EQ(p.ToString(t->schema()), "i >= 10 AND s = 'x'");
  EXPECT_EQ(Predicate().ToString(t->schema()), "TRUE");
}

TEST(ApplyFilterTest, KeepsMatchingRowsOnly) {
  TablePtr t = MakeTable();
  ExecContext ctx;
  Predicate p;
  p.And({2, CompareOp::kEq, Value("apple")});
  auto r = ApplyFilter(*t, p, "filtered", &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->column(0).Int64At(0), 1);
  EXPECT_EQ((*r)->column(0).Int64At(1), 4);
  EXPECT_EQ(ctx.counters().rows_scanned, 4u);
  EXPECT_EQ(ctx.counters().rows_emitted, 2u);
}

TEST(ApplyFilterTest, PreservesNulls) {
  TablePtr t = MakeTable();
  Predicate p;
  p.And({1, CompareOp::kGt, Value(3.0)});
  auto r = ApplyFilter(*t, p, "filtered", nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 2u);
  EXPECT_TRUE((*r)->column(0).IsNull(0));  // the NULL-i row survives
}

TEST(ApplyFilterTest, RejectsInvalidPredicate) {
  TablePtr t = MakeTable();
  Predicate bad;
  bad.And({2, CompareOp::kLt, Value(3)});
  EXPECT_FALSE(ApplyFilter(*t, bad, "f", nullptr).ok());
}

}  // namespace
}  // namespace gbmqo
