#include "exec/predicate.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace gbmqo {
namespace {

TablePtr MakeTable() {
  TableBuilder b(Schema({{"i", DataType::kInt64, true},
                         {"d", DataType::kDouble, false},
                         {"s", DataType::kString, false}}));
  EXPECT_TRUE(b.AppendRow({Value(1), Value(1.5), Value("apple")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(2), Value(2.5), Value("banana")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(Null{}), Value(3.5), Value("cherry")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(4), Value(4.5), Value("apple")}).ok());
  return *b.Build("t");
}

TEST(PredicateTest, TrueMatchesEverything) {
  TablePtr t = MakeTable();
  Predicate p;
  EXPECT_TRUE(p.is_true());
  for (size_t i = 0; i < t->num_rows(); ++i) EXPECT_TRUE(p.Matches(*t, i));
}

TEST(PredicateTest, NumericComparisons) {
  TablePtr t = MakeTable();
  Predicate ge;
  ge.And({0, CompareOp::kGe, Value(2)});
  EXPECT_FALSE(ge.Matches(*t, 0));
  EXPECT_TRUE(ge.Matches(*t, 1));
  EXPECT_TRUE(ge.Matches(*t, 3));

  Predicate lt;
  lt.And({1, CompareOp::kLt, Value(3.0)});
  EXPECT_TRUE(lt.Matches(*t, 0));
  EXPECT_FALSE(lt.Matches(*t, 2));
}

TEST(PredicateTest, NullNeverMatches) {
  TablePtr t = MakeTable();
  Predicate any;
  any.And({0, CompareOp::kNe, Value(999)});
  EXPECT_FALSE(any.Matches(*t, 2));  // row 2 has NULL i
}

TEST(PredicateTest, StringComparisons) {
  TablePtr t = MakeTable();
  Predicate eq;
  eq.And({2, CompareOp::kEq, Value("apple")});
  EXPECT_TRUE(eq.Matches(*t, 0));
  EXPECT_FALSE(eq.Matches(*t, 1));
  EXPECT_TRUE(eq.Matches(*t, 3));
}

TEST(PredicateTest, ConjunctionAndsAll) {
  TablePtr t = MakeTable();
  Predicate p;
  p.And({2, CompareOp::kEq, Value("apple")})
      .And({0, CompareOp::kGt, Value(2)});
  EXPECT_FALSE(p.Matches(*t, 0));  // apple but i=1
  EXPECT_TRUE(p.Matches(*t, 3));   // apple and i=4
}

TEST(PredicateTest, ValidateCatchesTypeErrors) {
  TablePtr t = MakeTable();
  Predicate bad_type;
  bad_type.And({2, CompareOp::kEq, Value(1)});  // string col vs int
  EXPECT_FALSE(bad_type.Validate(t->schema()).ok());
  Predicate bad_col;
  bad_col.And({9, CompareOp::kEq, Value(1)});
  EXPECT_FALSE(bad_col.Validate(t->schema()).ok());
  Predicate null_literal;
  null_literal.And({0, CompareOp::kEq, Value(Null{})});
  EXPECT_FALSE(null_literal.Validate(t->schema()).ok());
}

TEST(PredicateTest, ToString) {
  TablePtr t = MakeTable();
  Predicate p;
  p.And({0, CompareOp::kGe, Value(10)}).And({2, CompareOp::kEq, Value("x")});
  EXPECT_EQ(p.ToString(t->schema()), "i >= 10 AND s = 'x'");
  EXPECT_EQ(Predicate().ToString(t->schema()), "TRUE");
}

TEST(ApplyFilterTest, KeepsMatchingRowsOnly) {
  TablePtr t = MakeTable();
  ExecContext ctx;
  Predicate p;
  p.And({2, CompareOp::kEq, Value("apple")});
  auto r = ApplyFilter(*t, p, "filtered", &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->column(0).Int64At(0), 1);
  EXPECT_EQ((*r)->column(0).Int64At(1), 4);
  EXPECT_EQ(ctx.counters().rows_scanned, 4u);
  EXPECT_EQ(ctx.counters().rows_emitted, 2u);
}

TEST(ApplyFilterTest, PreservesNulls) {
  TablePtr t = MakeTable();
  Predicate p;
  p.And({1, CompareOp::kGt, Value(3.0)});
  auto r = ApplyFilter(*t, p, "filtered", nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 2u);
  EXPECT_TRUE((*r)->column(0).IsNull(0));  // the NULL-i row survives
}

TEST(ApplyFilterTest, RejectsInvalidPredicate) {
  TablePtr t = MakeTable();
  Predicate bad;
  bad.And({2, CompareOp::kLt, Value(3)});
  EXPECT_FALSE(ApplyFilter(*t, bad, "f", nullptr).ok());
}

TEST(ApplyFilterTest, TruePredicateKeepsAllRows) {
  TablePtr t = MakeTable();
  ExecContext ctx;
  auto r = ApplyFilter(*t, Predicate::True(), "all", &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), t->num_rows());
  EXPECT_EQ(ctx.counters().rows_emitted, t->num_rows());
}

// ---- bulk path vs per-row reference, across SIMD tiers ----------------------

/// Random table mixing nullable int64, double, and string columns, sized to
/// cross several 64-row bitmap words plus a ragged tail.
TablePtr RandomTable(size_t rows, uint64_t seed) {
  TableBuilder b(Schema({{"i", DataType::kInt64, true},
                         {"d", DataType::kDouble, true},
                         {"s", DataType::kString, false}}));
  Rng rng(seed);
  const char* names[] = {"alpha", "beta", "gamma", "delta", ""};
  for (size_t r = 0; r < rows; ++r) {
    Value i = rng.Bernoulli(0.15)
                  ? Value(Null{})
                  : Value(static_cast<int64_t>(rng.Uniform(200)) - 100);
    Value d = rng.Bernoulli(0.15)
                  ? Value(Null{})
                  : Value(static_cast<double>(rng.Uniform(1000)) / 8.0 - 60.0);
    EXPECT_TRUE(b.AppendRow({i, d, Value(names[rng.Uniform(5)])}).ok());
  }
  return *b.Build("rand");
}

/// The bulk ApplyFilter output must equal filtering row-by-row with
/// Predicate::Matches — for every SIMD tier, with identical counters.
void ExpectBulkMatchesRowAtATime(const Table& t, const Predicate& p) {
  // Reference: per-row Matches.
  std::vector<size_t> expect_rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (p.Matches(t, r)) expect_rows.push_back(r);
  }
  WorkCounters reference_counters;
  bool have_reference = false;
  for (SimdLevel level : {SimdLevel::kScalar, DetectedSimdLevel()}) {
    SCOPED_TRACE(SimdLevelName(level));
    ExecContext ctx;
    auto r = ApplyFilter(t, p, "f", &ctx, level);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ((*r)->num_rows(), expect_rows.size());
    for (size_t out = 0; out < expect_rows.size(); ++out) {
      const size_t in = expect_rows[out];
      for (int c = 0; c < t.schema().num_columns(); ++c) {
        EXPECT_EQ((*r)->column(c).ValueAt(out), t.column(c).ValueAt(in))
            << "row " << out << " col " << c;
      }
    }
    if (!have_reference) {
      reference_counters = ctx.counters();
      have_reference = true;
    } else {
      EXPECT_EQ(ctx.counters().rows_scanned, reference_counters.rows_scanned);
      EXPECT_EQ(ctx.counters().rows_emitted, reference_counters.rows_emitted);
      EXPECT_EQ(ctx.counters().bytes_materialized,
                reference_counters.bytes_materialized);
    }
  }
}

TEST(ApplyFilterSimdTest, AllOpsAllTypesMatchRowAtATime) {
  TablePtr t = RandomTable(1000, 11);
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (CompareOp op : ops) {
    SCOPED_TRACE(static_cast<int>(op));
    Predicate pi;
    pi.And({0, op, Value(7)});
    ExpectBulkMatchesRowAtATime(*t, pi);
    Predicate pd;
    pd.And({1, op, Value(12.5)});
    ExpectBulkMatchesRowAtATime(*t, pd);
    Predicate ps;
    ps.And({2, op, Value("beta")});
    ExpectBulkMatchesRowAtATime(*t, ps);
  }
}

TEST(ApplyFilterSimdTest, ConjunctionsAndRaggedTails) {
  // Sizes around the 64-row word boundary exercise the tail mask; the
  // 3-conjunct predicate exercises bitmap AND folding plus null AND-NOT on
  // two nullable columns.
  for (size_t rows : {0u, 1u, 63u, 64u, 65u, 127u, 500u}) {
    SCOPED_TRACE(rows);
    TablePtr t = RandomTable(rows, 100 + rows);
    Predicate p;
    p.And({0, CompareOp::kGe, Value(-50)})
        .And({1, CompareOp::kLt, Value(40.0)})
        .And({2, CompareOp::kNe, Value("gamma")});
    ExpectBulkMatchesRowAtATime(*t, p);
  }
}

TEST(ApplyFilterSimdTest, SelectivityExtremes) {
  TablePtr t = RandomTable(300, 5);
  Predicate none;
  none.And({0, CompareOp::kGt, Value(1000)});  // matches nothing
  ExpectBulkMatchesRowAtATime(*t, none);
  Predicate all;
  all.And({0, CompareOp::kGe, Value(-1000)});  // matches every non-NULL
  ExpectBulkMatchesRowAtATime(*t, all);
}

}  // namespace
}  // namespace gbmqo
