#include "core/sql_generator.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

Schema MakeSchema() {
  return Schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kInt64, false},
                 {"c", DataType::kInt64, false}});
}

PlanNode Leaf(ColumnSet cols) {
  PlanNode n;
  n.columns = cols;
  n.required = true;
  return n;
}

TEST(SqlGeneratorTest, NaiveLeafIsPlainSelect) {
  SqlGenerator gen("R", MakeSchema());
  LogicalPlan plan;
  plan.subplans = {Leaf({0})};
  auto stmts = gen.Generate(plan);
  ASSERT_TRUE(stmts.ok());
  ASSERT_EQ(stmts->size(), 1u);
  EXPECT_EQ((*stmts)[0].kind, SqlStatement::Kind::kSelect);
  EXPECT_EQ((*stmts)[0].text, "SELECT a, COUNT(*) AS cnt FROM R GROUP BY a;");
}

TEST(SqlGeneratorTest, IntermediateUsesSelectIntoAndSumCnt) {
  SqlGenerator gen("R", MakeSchema());
  LogicalPlan plan;
  PlanNode root;
  root.columns = {0, 1};
  root.children = {Leaf({0}), Leaf({1})};
  plan.subplans = {root};
  auto stmts = gen.Generate(plan);
  ASSERT_TRUE(stmts.ok());
  ASSERT_EQ(stmts->size(), 4u);
  EXPECT_EQ((*stmts)[0].kind, SqlStatement::Kind::kSelectInto);
  EXPECT_EQ((*stmts)[0].text,
            "SELECT a, b, COUNT(*) AS cnt INTO tmp_a_b FROM R GROUP BY a, b;");
  // Children re-aggregate with SUM(cnt) from the temp table.
  EXPECT_EQ((*stmts)[1].text,
            "SELECT a, SUM(cnt) AS cnt FROM tmp_a_b GROUP BY a;");
  EXPECT_EQ((*stmts)[2].text,
            "SELECT b, SUM(cnt) AS cnt FROM tmp_a_b GROUP BY b;");
  EXPECT_EQ((*stmts)[3].kind, SqlStatement::Kind::kDropTable);
  EXPECT_EQ((*stmts)[3].text, "DROP TABLE tmp_a_b;");
}

TEST(SqlGeneratorTest, BreadthFirstOrderEmitsDropBeforeDescent) {
  SqlGenerator gen("R", MakeSchema());
  LogicalPlan plan;
  PlanNode mid;
  mid.columns = {0, 1};
  mid.children = {Leaf({0}), Leaf({1})};
  PlanNode root;
  root.columns = {0, 1, 2};
  root.mark = TraversalMark::kBreadthFirst;
  root.children = {mid, Leaf({2})};
  plan.subplans = {root};
  auto stmts = gen.Generate(plan);
  ASSERT_TRUE(stmts.ok());
  // Order: root INTO, mid INTO, (2) SELECT, DROP root, then mid's children,
  // DROP mid.
  std::vector<std::string> kinds;
  for (const auto& s : *stmts) kinds.push_back(s.text.substr(0, 6));
  ASSERT_EQ(stmts->size(), 7u);
  EXPECT_EQ((*stmts)[3].text, "DROP TABLE tmp_a_b_c;");
  EXPECT_EQ((*stmts)[6].text, "DROP TABLE tmp_a_b;");
}

TEST(SqlGeneratorTest, MultiAggregateReaggregation) {
  SqlGenerator gen("R", MakeSchema());
  LogicalPlan plan;
  PlanNode root;
  root.columns = {0, 1};
  root.aggs = {AggRequest{}, AggRequest{AggKind::kSum, 2},
               AggRequest{AggKind::kMin, 2}};
  PlanNode leaf = Leaf({0});
  leaf.aggs = {AggRequest{AggKind::kSum, 2}, AggRequest{AggKind::kMin, 2}};
  root.children = {leaf};
  plan.subplans = {root};
  auto stmts = gen.Generate(plan);
  ASSERT_TRUE(stmts.ok());
  EXPECT_NE((*stmts)[0].text.find("SUM(c) AS sum_c"), std::string::npos);
  EXPECT_NE((*stmts)[0].text.find("MIN(c) AS min_c"), std::string::npos);
  // From the intermediate, SUM(sum_c) / MIN(min_c).
  EXPECT_NE((*stmts)[1].text.find("SUM(sum_c) AS sum_c"), std::string::npos);
  EXPECT_NE((*stmts)[1].text.find("MIN(min_c) AS min_c"), std::string::npos);
}

TEST(SqlGeneratorTest, CubeAndRollupRenderNatively) {
  SqlGenerator gen("R", MakeSchema());
  LogicalPlan plan;
  PlanNode cube;
  cube.columns = {0, 1};
  cube.kind = NodeKind::kCube;
  cube.required = true;
  plan.subplans = {cube};
  auto stmts = gen.Generate(plan);
  ASSERT_TRUE(stmts.ok());
  EXPECT_NE((*stmts)[0].text.find("GROUP BY CUBE(a, b)"), std::string::npos);

  LogicalPlan plan2;
  PlanNode rollup;
  rollup.columns = {0, 1};
  rollup.kind = NodeKind::kRollup;
  rollup.rollup_order = {1, 0};
  rollup.required = true;
  plan2.subplans = {rollup};
  auto stmts2 = gen.Generate(plan2);
  ASSERT_TRUE(stmts2.ok());
  EXPECT_NE((*stmts2)[0].text.find("GROUP BY ROLLUP(b, a)"), std::string::npos);
}

TEST(SqlGeneratorTest, GroupingSetsSql) {
  SqlGenerator gen("R", MakeSchema());
  auto requests = SingleColumnRequests({0, 2});
  EXPECT_EQ(gen.GroupingSetsSql(requests),
            "SELECT a, c, COUNT(*) AS cnt FROM R "
            "GROUP BY GROUPING SETS ((a), (c));");
}

TEST(SqlGeneratorTest, UnknownColumnRejected) {
  SqlGenerator gen("R", MakeSchema());
  LogicalPlan plan;
  plan.subplans = {Leaf({7})};
  EXPECT_FALSE(gen.Generate(plan).ok());
}

}  // namespace
}  // namespace gbmqo
