#include "common/status.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "table 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: table 'x'");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("m").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("m").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("m").IsInternal());
  EXPECT_TRUE(Status::NotSupported("m").IsNotSupported());
  EXPECT_TRUE(Status::Cancelled("m").IsCancelled());
  EXPECT_TRUE(Status::DeadlineExceeded("m").IsDeadlineExceeded());
}

TEST(StatusTest, CancellationCodesRenderByName) {
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  // The cancellation codes are errors, not silent successes.
  EXPECT_FALSE(Status::Cancelled("stop").ok());
  EXPECT_FALSE(Status::DeadlineExceeded("late").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Status Helper(bool fail) {
  GBMQO_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_TRUE(Helper(true).IsInternal());
}

}  // namespace
}  // namespace gbmqo
