#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/distinct_estimator.h"
#include "stats/histogram.h"
#include "stats/statistics_manager.h"

namespace gbmqo {
namespace {

TablePtr MakeTable(int rows, int d1, int d2, uint64_t seed = 7) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"s", DataType::kString, true}}));
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    Value s = rng.Bernoulli(0.05)
                  ? Value(Null{})
                  : Value("str" + std::to_string(rng.Uniform(20)));
    EXPECT_TRUE(b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(d1))),
                             Value(static_cast<int64_t>(rng.Uniform(d2))), s})
                    .ok());
  }
  return *b.Build("t");
}

TEST(DistinctTest, ExactSingleColumn) {
  TablePtr t = MakeTable(10000, 13, 200);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{0}), 13u);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{1}), 200u);
}

TEST(DistinctTest, ExactPairUpperBound) {
  TablePtr t = MakeTable(50000, 13, 200);
  const uint64_t pair = ExactDistinctCount(*t, ColumnSet{0, 1});
  EXPECT_LE(pair, 13u * 200u);
  EXPECT_GE(pair, 200u);  // at least max of the two
  // With 50k rows and 2600 combinations, essentially all appear.
  EXPECT_GT(pair, 2500u);
}

TEST(DistinctTest, EmptySetIsOne) {
  TablePtr t = MakeTable(10, 2, 2);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet()), 1u);
}

TEST(DistinctTest, EmptyTableIsZero) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false}}));
  TablePtr t = *b.Build("e");
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{0}), 0u);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet()), 0u);
}

TEST(DistinctTest, NullCountsAsOneValue) {
  TableBuilder b(Schema({{"a", DataType::kInt64, true}}));
  ASSERT_TRUE(b.AppendRow({Value(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{})}).ok());
  TablePtr t = *b.Build("n");
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{0}), 2u);
}

TEST(DistinctTest, SampledWithinTolerance) {
  TablePtr t = MakeTable(100000, 50, 1000);
  // Low-cardinality column: a modest sample nails it.
  const uint64_t est = SampledDistinctCount(*t, ColumnSet{0}, 5000);
  EXPECT_NEAR(static_cast<double>(est), 50.0, 5.0);
}

TEST(DistinctTest, SampledDegeneratesToExactOnFullSample) {
  TablePtr t = MakeTable(1000, 30, 10);
  EXPECT_EQ(SampledDistinctCount(*t, ColumnSet{0}, 100000),
            ExactDistinctCount(*t, ColumnSet{0}));
}

TEST(DistinctTest, SampledClampedToFeasibleRange) {
  TablePtr t = MakeTable(2000, 1999, 2);  // near-unique column
  const uint64_t est = SampledDistinctCount(*t, ColumnSet{0}, 200);
  EXPECT_LE(est, 2000u);
  EXPECT_GE(est, 100u);  // must be at least the sampled distinct count
}

TEST(StatisticsManagerTest, CachesAndMeters) {
  TablePtr t = MakeTable(5000, 10, 100);
  StatisticsManager stats(*t);
  EXPECT_FALSE(stats.Has(ColumnSet{0}));
  const ColumnSetStats& s1 = stats.Get(ColumnSet{0});
  EXPECT_DOUBLE_EQ(s1.distinct_count, 10.0);
  EXPECT_GT(s1.row_width, 0.0);
  EXPECT_EQ(stats.statistics_created(), 1u);
  EXPECT_TRUE(stats.Has(ColumnSet{0}));
  // Second request is served from cache.
  stats.Get(ColumnSet{0});
  EXPECT_EQ(stats.statistics_created(), 1u);
  stats.Get(ColumnSet{0, 1});
  EXPECT_EQ(stats.statistics_created(), 2u);
  EXPECT_GE(stats.creation_seconds(), 0.0);
}

TEST(StatisticsManagerTest, SampledMode) {
  TablePtr t = MakeTable(50000, 25, 100);
  StatisticsManager stats(*t, DistinctMode::kSampled, 4000);
  EXPECT_NEAR(stats.Get(ColumnSet{0}).distinct_count, 25.0, 4.0);
}

TEST(HistogramTest, EquiDepthBucketsCoverAllRows) {
  TablePtr t = MakeTable(10000, 64, 5);
  auto h = Histogram::Build(*t, 0, 8);
  ASSERT_TRUE(h.ok());
  uint64_t total = 0;
  for (const auto& b : h->buckets()) total += b.row_count;
  EXPECT_EQ(total + h->null_count(), 10000u);
  EXPECT_LE(h->buckets().size(), 8u);
}

TEST(HistogramTest, BucketsAreOrderedAndDisjoint) {
  TablePtr t = MakeTable(5000, 100, 5);
  auto h = Histogram::Build(*t, 0, 10);
  ASSERT_TRUE(h.ok());
  const auto& bs = h->buckets();
  for (size_t i = 1; i < bs.size(); ++i) {
    EXPECT_GT(bs[i].lo, bs[i - 1].hi);
  }
}

TEST(HistogramTest, RangeSelectivityFullDomainIsOne) {
  TablePtr t = MakeTable(2000, 50, 5);
  auto h = Histogram::Build(*t, 0, 16);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateRangeSelectivity(-1e9, 1e9), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(h->EstimateRangeSelectivity(5, 4), 0.0);
}

TEST(HistogramTest, HalfDomainRoughlyHalf) {
  TablePtr t = MakeTable(20000, 100, 5);
  auto h = Histogram::Build(*t, 0, 32);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateRangeSelectivity(0, 49), 0.5, 0.05);
}

TEST(HistogramTest, NullsExcludedAndCounted) {
  TablePtr t = MakeTable(5000, 10, 10);
  auto h = Histogram::Build(*t, 2, 8);  // string column with ~5% nulls
  ASSERT_TRUE(h.ok());
  EXPECT_GT(h->null_count(), 0u);
}

TEST(HistogramTest, InvalidArgsRejected) {
  TablePtr t = MakeTable(10, 2, 2);
  EXPECT_FALSE(Histogram::Build(*t, 99, 8).ok());
  EXPECT_FALSE(Histogram::Build(*t, 0, 0).ok());
}

}  // namespace
}  // namespace gbmqo
