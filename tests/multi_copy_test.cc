// Section 7.2 extension: multi-copy aggregate materialization. When two
// merged sub-plans need disjoint aggregate sets, the merged node may spool
// one narrow temp table per side instead of a single wide
// union-of-aggregates table — chosen cost-based.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gbmqo.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

PlanNode Leaf(ColumnSet cols, std::vector<AggRequest> aggs) {
  PlanNode n;
  n.columns = cols;
  n.required = true;
  n.aggs = std::move(aggs);
  return n;
}

std::vector<GroupByRequest> DisjointAggRequests() {
  // (returnflag) wants SUM/MIN/MAX of quantity; (linestatus) wants SUM/MIN/
  // MAX of partkey: disjoint aggregate argument sets.
  return {
      {ColumnSet{kReturnflag},
       {AggRequest{}, AggRequest{AggKind::kSum, kQuantity},
        AggRequest{AggKind::kMin, kQuantity},
        AggRequest{AggKind::kMax, kQuantity}}},
      {ColumnSet{kLinestatus},
       {AggRequest{}, AggRequest{AggKind::kSum, kPartkey},
        AggRequest{AggKind::kMin, kPartkey},
        AggRequest{AggKind::kMax, kPartkey}}},
  };
}

TEST(MultiCopyMergeTest, CandidateGeneratedWhenAggsDiffer) {
  auto requests = DisjointAggRequests();
  PlanNode p1 = Leaf(requests[0].columns, requests[0].aggs);
  PlanNode p2 = Leaf(requests[1].columns, requests[1].aggs);
  MergeOptions opts;
  opts.enable_multi_copy = true;
  auto cands = SubPlanMerge(p1, p2, opts);
  bool found = false;
  for (const PlanNode& c : cands) {
    if (!c.agg_copies.empty()) {
      found = true;
      EXPECT_EQ(c.agg_copies.size(), 2u);
      EXPECT_EQ(c.children.size(), 2u);
      // Each child is covered by some copy.
      EXPECT_GE(c.CopyFor(c.children[0].aggs), 0);
      EXPECT_GE(c.CopyFor(c.children[1].aggs), 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MultiCopyMergeTest, NoCandidateForIdenticalAggs) {
  PlanNode p1 = Leaf({0}, {AggRequest{}});
  PlanNode p2 = Leaf({1}, {AggRequest{}});
  MergeOptions opts;
  opts.enable_multi_copy = true;
  for (const PlanNode& c : SubPlanMerge(p1, p2, opts)) {
    EXPECT_TRUE(c.agg_copies.empty());
  }
}

TEST(MultiCopyValidateTest, AcceptsWellFormed) {
  auto requests = DisjointAggRequests();
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  root.agg_copies = {UnionAggs(requests[0].aggs, {}),
                     UnionAggs(requests[1].aggs, {})};
  root.aggs = UnionAggs(root.agg_copies[0], root.agg_copies[1]);
  root.children = {Leaf(requests[0].columns, requests[0].aggs),
                   Leaf(requests[1].columns, requests[1].aggs)};
  LogicalPlan plan;
  plan.subplans = {root};
  EXPECT_TRUE(plan.Validate(requests).ok());
}

TEST(MultiCopyValidateTest, RejectsUncoveredChildAndBadUnion) {
  auto requests = DisjointAggRequests();
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  // Copies only cover request 0's aggregates.
  root.agg_copies = {UnionAggs(requests[0].aggs, {})};
  root.aggs = root.agg_copies[0];
  root.children = {Leaf(requests[0].columns, requests[0].aggs),
                   Leaf(requests[1].columns, requests[1].aggs)};
  LogicalPlan plan;
  plan.subplans = {root};
  EXPECT_FALSE(plan.Validate(requests).ok());

  // Union mismatch: aggs claims more than the copies provide.
  root.agg_copies = {UnionAggs(requests[0].aggs, {})};
  root.aggs = UnionAggs(requests[0].aggs, requests[1].aggs);
  root.children = {Leaf(requests[0].columns, requests[0].aggs)};
  plan.subplans = {root};
  EXPECT_FALSE(plan.Validate({requests[0]}).ok());
}

TEST(MultiCopyValidateTest, RejectsRequiredMultiCopyNode) {
  PlanNode root;
  root.columns = {0, 1};
  root.required = true;
  root.agg_copies = {{AggRequest{}}};
  root.aggs = {AggRequest{}};
  root.children = {Leaf({0}, {AggRequest{}})};
  LogicalPlan plan;
  plan.subplans = {root};
  EXPECT_FALSE(
      plan.Validate({GroupByRequest::Count({0, 1}), GroupByRequest::Count({0})})
          .ok());
}

TEST(MultiCopyExecTest, ResultsMatchNaive) {
  TablePtr t = GenerateLineitem({.rows = 6000, .seed = 3});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  auto requests = DisjointAggRequests();

  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  root.agg_copies = {UnionAggs(requests[0].aggs, {}),
                     UnionAggs(requests[1].aggs, {})};
  root.aggs = UnionAggs(root.agg_copies[0], root.agg_copies[1]);
  root.children = {Leaf(requests[0].columns, requests[0].aggs),
                   Leaf(requests[1].columns, requests[1].aggs)};
  LogicalPlan plan;
  plan.subplans = {root};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&catalog, "lineitem");
  auto multi = exec.Execute(plan, requests);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  auto naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(naive.ok());
  for (const auto& [cols, ta] : naive->results) {
    const TablePtr& tb = multi->results.at(cols);
    ASSERT_EQ(ta->num_rows(), tb->num_rows());
    // Compare the SUM column (ordinal |cols| + 1, after cnt).
    double sa = 0, sb = 0;
    for (size_t r = 0; r < ta->num_rows(); ++r) {
      sa += ta->column(cols.size() + 1).NumericAt(r);
      sb += tb->column(cols.size() + 1).NumericAt(r);
    }
    EXPECT_NEAR(sa, sb, 1e-6 * (1 + std::abs(sa)));
  }
  EXPECT_EQ(catalog.temp_bytes(), 0u);
}

TEST(MultiCopyCostTest, NarrowCopiesCheaperWhenAggSetsWide) {
  // With many disjoint aggregates, two narrow copies beat one wide table in
  // materialization bytes; CostSubPlan must reflect that.
  TablePtr t = GenerateLineitem({.rows = 5000, .seed = 9});
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  CostParams params;
  params.materialize_byte = 50.0;  // storage-dominated regime
  OptimizerCostModel model(*t, params);
  auto requests = DisjointAggRequests();

  PlanNode single;
  single.columns = {kReturnflag, kLinestatus};
  single.aggs = UnionAggs(requests[0].aggs, requests[1].aggs);
  single.children = {Leaf(requests[0].columns, requests[0].aggs),
                     Leaf(requests[1].columns, requests[1].aggs)};
  PlanNode multi = single;
  multi.agg_copies = {UnionAggs(requests[0].aggs, {}),
                      UnionAggs(requests[1].aggs, {})};
  multi.aggs = UnionAggs(multi.agg_copies[0], multi.agg_copies[1]);

  const NodeDesc root = whatif.Root();
  const double cost_single = CostSubPlan(single, root, &model, &whatif);
  const double cost_multi = CostSubPlan(multi, root, &model, &whatif);
  // Multi-copy pays two scans of R but spools 7+7 instead of 2x13 agg
  // columns... with extreme materialize cost the narrow copies can win;
  // at minimum the two costs must differ (the alternative is real).
  EXPECT_NE(cost_single, cost_multi);
}

TEST(MultiCopySqlTest, EmitsOneSelectIntoPerCopy) {
  auto requests = DisjointAggRequests();
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus};
  root.agg_copies = {UnionAggs(requests[0].aggs, {}),
                     UnionAggs(requests[1].aggs, {})};
  root.aggs = UnionAggs(root.agg_copies[0], root.agg_copies[1]);
  root.children = {Leaf(requests[0].columns, requests[0].aggs),
                   Leaf(requests[1].columns, requests[1].aggs)};
  LogicalPlan plan;
  plan.subplans = {root};

  Schema schema = GenerateLineitem({.rows = 1})->schema();
  SqlGenerator gen("lineitem", schema);
  auto stmts = gen.Generate(plan);
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  int intos = 0, drops = 0;
  for (const auto& s : *stmts) {
    if (s.kind == SqlStatement::Kind::kSelectInto) ++intos;
    if (s.kind == SqlStatement::Kind::kDropTable) ++drops;
    if (s.text.find("_copy0") != std::string::npos ||
        s.text.find("_copy1") != std::string::npos) {
      // copies must never carry the other side's aggregates
      if (s.text.find("_copy0") != std::string::npos &&
          s.kind == SqlStatement::Kind::kSelectInto) {
        EXPECT_EQ(s.text.find("l_partkey"), std::string::npos);
      }
    }
  }
  EXPECT_EQ(intos, 2);
  EXPECT_EQ(drops, 2);
}

TEST(MultiCopyOptimizerTest, EndToEndWithExtensionEnabled) {
  TablePtr t = GenerateLineitem({.rows = 6000, .seed = 21});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  OptimizerCostModel model(*t);
  OptimizerOptions opts;
  opts.enable_multi_copy = true;
  GbMqoOptimizer optimizer(&model, &whatif, opts);
  auto requests = DisjointAggRequests();
  // Add plain COUNT requests so merges happen.
  requests.push_back(GroupByRequest::Count({kShipmode}));
  requests.push_back(GroupByRequest::Count({kShipinstruct}));
  auto r = optimizer.Optimize(requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->plan.Validate(requests).ok());
  PlanExecutor exec(&catalog, "lineitem");
  auto result = exec.Execute(r->plan, requests);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->results.size(), requests.size());
}

TEST(MultiCopyExecTest, BreadthFirstParentWithMultiCopyChild) {
  // Regression: a BF-marked parent must not try to single-materialize a
  // multi-copy child; it degenerates to DF for that child.
  TablePtr t = GenerateLineitem({.rows = 4000, .seed = 6});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  auto requests = DisjointAggRequests();
  requests.push_back(GroupByRequest::Count({kShipmode}));

  PlanNode copies;
  copies.columns = {kReturnflag, kLinestatus};
  copies.agg_copies = {UnionAggs(requests[0].aggs, {}),
                       UnionAggs(requests[1].aggs, {})};
  copies.aggs = UnionAggs(copies.agg_copies[0], copies.agg_copies[1]);
  copies.children = {Leaf(requests[0].columns, requests[0].aggs),
                     Leaf(requests[1].columns, requests[1].aggs)};

  PlanNode root;
  root.columns = {kReturnflag, kLinestatus, kShipmode};
  root.aggs = copies.aggs;
  root.mark = TraversalMark::kBreadthFirst;
  root.children = {copies, Leaf({kShipmode}, {AggRequest{}})};
  LogicalPlan plan;
  plan.subplans = {root};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&catalog, "lineitem");
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->results.size(), 3u);
  EXPECT_EQ(catalog.temp_bytes(), 0u);
}

}  // namespace
}  // namespace gbmqo
