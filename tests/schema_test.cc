#include "storage/schema.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

Schema MakeSchema() {
  return Schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kString, true},
                 {"c", DataType::kDouble, false}});
}

TEST(SchemaTest, FindColumn) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.FindColumn("a"), 0);
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("c"), 2);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  EXPECT_EQ(s.FindColumn("A"), -1);  // case sensitive
}

TEST(SchemaTest, ResolveColumns) {
  Schema s = MakeSchema();
  auto r = s.ResolveColumns({"c", "a"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (ColumnSet{0, 2}));
}

TEST(SchemaTest, ResolveUnknownColumnFails) {
  Schema s = MakeSchema();
  auto r = s.ResolveColumns({"a", "zzz"});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(SchemaTest, ResolveDuplicateFails) {
  Schema s = MakeSchema();
  auto r = s.ResolveColumns({"a", "a"});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, ColumnNamesOrdinalOrder) {
  Schema s = MakeSchema();
  auto names = s.ColumnNames(ColumnSet{2, 0});
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "c");
}

TEST(SchemaTest, Project) {
  Schema s = MakeSchema();
  Schema p = s.Project(ColumnSet{1, 2});
  ASSERT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.column(0).name, "b");
  EXPECT_EQ(p.column(0).type, DataType::kString);
  EXPECT_TRUE(p.column(0).nullable);
  EXPECT_EQ(p.column(1).name, "c");
  // Projection re-numbers ordinals.
  EXPECT_EQ(p.FindColumn("b"), 0);
  EXPECT_EQ(p.FindColumn("c"), 1);
  EXPECT_EQ(p.FindColumn("a"), -1);
}

TEST(SchemaTest, ToString) {
  Schema s({{"x", DataType::kInt64, false}});
  EXPECT_EQ(s.ToString(), "(x INT64 NOT NULL)");
}

}  // namespace
}  // namespace gbmqo
