#include <gtest/gtest.h>

#include "data/nref_gen.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"
#include "data/widen.h"
#include "stats/distinct_estimator.h"

namespace gbmqo {
namespace {

TEST(TpchGenTest, SchemaAndRowCount) {
  TablePtr t = GenerateLineitem({.rows = 5000});
  EXPECT_EQ(t->name(), "lineitem");
  EXPECT_EQ(t->schema().num_columns(), kNumLineitemColumns);
  EXPECT_EQ(t->num_rows(), 5000u);
  EXPECT_EQ(t->schema().FindColumn("l_shipdate"), kShipdate);
}

TEST(TpchGenTest, DomainCardinalities) {
  TablePtr t = GenerateLineitem({.rows = 50000});
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{kReturnflag}), 3u);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{kLinestatus}), 2u);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{kShipmode}), 7u);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{kShipinstruct}), 4u);
  EXPECT_LE(ExactDistinctCount(*t, ColumnSet{kQuantity}), 50u);
  EXPECT_LE(ExactDistinctCount(*t, ColumnSet{kDiscount}), 11u);
  EXPECT_LE(ExactDistinctCount(*t, ColumnSet{kTax}), 9u);
  EXPECT_LE(ExactDistinctCount(*t, ColumnSet{kShipdate}), 2526u);
  // Comment is dense (near-unique).
  EXPECT_GT(ExactDistinctCount(*t, ColumnSet{kComment}), 20000u);
}

TEST(TpchGenTest, DateCorrelationCompresses) {
  // The joint (receiptdate, commitdate) cardinality must be far below the
  // independence product — the structural fact the paper's plan exploits.
  TablePtr t = GenerateLineitem({.rows = 100000, .date_domain = 2526});
  const uint64_t receipt = ExactDistinctCount(*t, ColumnSet{kReceiptdate});
  const uint64_t commit = ExactDistinctCount(*t, ColumnSet{kCommitdate});
  const uint64_t joint =
      ExactDistinctCount(*t, ColumnSet{kReceiptdate, kCommitdate});
  EXPECT_LT(joint, receipt * commit / 10);
  EXPECT_LT(joint, t->num_rows());
}

TEST(TpchGenTest, ReceiptAfterShip) {
  TablePtr t = GenerateLineitem({.rows = 2000});
  for (size_t i = 0; i < t->num_rows(); ++i) {
    EXPECT_GT(t->column(kReceiptdate).Int64At(i),
              t->column(kShipdate).Int64At(i));
  }
}

TEST(TpchGenTest, DeterministicForSeed) {
  TablePtr a = GenerateLineitem({.rows = 1000, .seed = 5});
  TablePtr b = GenerateLineitem({.rows = 1000, .seed = 5});
  for (size_t i = 0; i < 1000; i += 97) {
    EXPECT_EQ(a->Row(i), b->Row(i));
  }
}

TEST(TpchGenTest, SkewReducesEffectiveDistincts) {
  TablePtr uniform =
      GenerateLineitem({.rows = 30000, .zipf_theta = 0.0, .date_domain = 2526});
  TablePtr skewed =
      GenerateLineitem({.rows = 30000, .zipf_theta = 2.0, .date_domain = 2526});
  // Under heavy skew far fewer shipdate values actually appear.
  EXPECT_LT(ExactDistinctCount(*skewed, ColumnSet{kShipdate}),
            ExactDistinctCount(*uniform, ColumnSet{kShipdate}) / 2);
}

TEST(TpchGenTest, AnalysisColumnsAreTwelve) {
  const auto cols = LineitemAnalysisColumns();
  EXPECT_EQ(cols.size(), 12u);
  for (int c : cols) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, kNumLineitemColumns);
  }
}

TEST(SalesGenTest, SchemaAndHierarchyCorrelation) {
  TablePtr t = GenerateSales({.rows = 30000});
  EXPECT_EQ(t->schema().num_columns(), kNumSalesColumns);
  // Geography hierarchy: (region) is implied by (state).
  const uint64_t state = ExactDistinctCount(*t, ColumnSet{kState});
  const uint64_t state_region =
      ExactDistinctCount(*t, ColumnSet{kState, kRegion});
  EXPECT_EQ(state, state_region);
  EXPECT_LE(state, 50u);
  // Promo has nulls.
  EXPECT_GT(t->column(kPromoId).null_count(), 0u);
}

TEST(NrefGenTest, SchemaAndProfiles) {
  TablePtr t = GenerateNref({.rows = 30000});
  EXPECT_EQ(t->schema().num_columns(), kNumNrefColumns);
  EXPECT_EQ(ExactDistinctCount(*t, ColumnSet{kDbSource}), 7u);
  EXPECT_LE(ExactDistinctCount(*t, ColumnSet{kIdentityPct}), 101u);
  // Score correlates with identity: joint cardinality ≈ score cardinality.
  const uint64_t score = ExactDistinctCount(*t, ColumnSet{kScore});
  const uint64_t joint =
      ExactDistinctCount(*t, ColumnSet{kScore, kIdentityPct});
  EXPECT_EQ(score, joint);
}

TEST(WidenTest, SharesStorageAndRenames) {
  TablePtr t = GenerateLineitem({.rows = 1000});
  auto wide = WidenTable(*t, LineitemAnalysisColumns(), 3, "wide");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ((*wide)->schema().num_columns(), 36);
  EXPECT_EQ((*wide)->num_rows(), 1000u);
  // Repetition 0 keeps names; later reps get suffixes.
  EXPECT_GE((*wide)->schema().FindColumn("l_shipdate"), 0);
  EXPECT_GE((*wide)->schema().FindColumn("l_shipdate__r2"), 0);
  // Storage is shared: identical column objects.
  const int orig = (*wide)->schema().FindColumn("l_shipdate");
  const int rep = (*wide)->schema().FindColumn("l_shipdate__r1");
  EXPECT_EQ((*wide)->column_ptr(orig).get(), (*wide)->column_ptr(rep).get());
}

TEST(WidenTest, RejectsOverflowAndBadArgs) {
  TablePtr t = GenerateLineitem({.rows = 10});
  EXPECT_FALSE(WidenTable(*t, LineitemAnalysisColumns(), 6, "w").ok());  // 72 > 64
  EXPECT_FALSE(WidenTable(*t, {0}, 0, "w").ok());
  EXPECT_FALSE(WidenTable(*t, {99}, 1, "w").ok());
}

}  // namespace
}  // namespace gbmqo
