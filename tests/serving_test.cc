// Concurrent serving determinism: N clients against one Server must see
// exactly the content serial sessions produce, the cross-request aggregate
// cache must hit deterministically on repeated workloads, and catalog temp
// bytes must return to the pinned-cache baseline after every request.
#include "api/server.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "data/tpch_gen.h"
#include "storage/ingest.h"

namespace gbmqo {
namespace {

std::map<std::string, std::vector<double>> Flatten(const Table& t, int ng) {
  std::map<std::string, std::vector<double>> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < ng; ++c) {
      key += t.column(c).ValueAt(row).ToString() + "|";
    }
    std::vector<double> aggs;
    for (int c = ng; c < t.schema().num_columns(); ++c) {
      aggs.push_back(t.column(c).IsNull(row) ? -1e308
                                             : t.column(c).NumericAt(row));
    }
    out[key] = std::move(aggs);
  }
  return out;
}

/// Bit-identity up to row order: same keys, same aggregate values.
void ExpectSameResults(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, ta] : a.results) {
    ASSERT_TRUE(b.results.count(cols)) << cols.ToString();
    const TablePtr& tb = b.results.at(cols);
    auto fa = Flatten(*ta, cols.size());
    auto fb = Flatten(*tb, cols.size());
    ASSERT_EQ(fa.size(), fb.size()) << cols.ToString();
    for (const auto& [key, aggs] : fa) {
      ASSERT_TRUE(fb.count(key)) << cols.ToString() << " " << key;
      ASSERT_EQ(aggs.size(), fb[key].size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        EXPECT_EQ(aggs[i], fb[key][i]) << cols.ToString() << " " << key;
      }
    }
  }
}

TablePtr SmallLineitem() {
  static TablePtr table = GenerateLineitem({.rows = 20000, .seed = 7});
  return table;
}

const char* kSpec = "SINGLE(l_returnflag, l_linestatus, l_shipmode)";

TEST(ServingTest, MatchesSession) {
  Server server(SmallLineitem());
  auto served = server.Execute(kSpec);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  Session session(SmallLineitem());
  auto direct = session.Execute(kSpec);
  ASSERT_TRUE(direct.ok());
  ExpectSameResults(*direct, *served);
}

TEST(ServingTest, ConcurrentClientsMatchSerialContent) {
  // Overlapping grouping sets from concurrent clients; coalescing off so
  // every submission really executes.
  const std::vector<std::string> specs = {
      "SINGLE(l_returnflag, l_linestatus, l_shipmode)",
      "PAIRS(l_returnflag, l_linestatus, l_shipmode)",
      "SINGLE(l_returnflag, l_shipinstruct)",
      "(l_returnflag, l_linestatus), (l_shipmode)",
      "SINGLE(l_linestatus, l_shipmode)",
      "PAIRS(l_returnflag, l_shipinstruct)",
  };
  ServerOptions options;
  options.pool_size = 4;
  options.coalesce_identical_requests = false;
  Server server(SmallLineitem(), options);

  std::vector<Server::Ticket> tickets(specs.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < specs.size(); ++i) {
    clients.emplace_back([&, i] {
      auto t = server.Submit(specs[i]);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      tickets[i] = *t;
    });
  }
  for (std::thread& c : clients) c.join();

  Session session(SmallLineitem());
  for (size_t i = 0; i < specs.size(); ++i) {
    auto served = tickets[i].Get();
    ASSERT_TRUE(served.ok()) << specs[i] << ": " << served.status().ToString();
    auto direct = session.Execute(specs[i]);
    ASSERT_TRUE(direct.ok());
    ExpectSameResults(*direct, *served);
  }
  EXPECT_EQ(server.stats().requests_served, specs.size());
  EXPECT_EQ(server.stats().requests_failed, 0u);
}

TEST(ServingTest, WarmCacheHitsDeterministically) {
  Server server(SmallLineitem());
  auto requests = server.Parse(kSpec);
  ASSERT_TRUE(requests.ok());

  auto cold = server.Execute(*requests);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->counters.cache_hits, 0u);

  // Every request is now covered by an exactly-matching pinned view, so the
  // repeat is served entirely from the cache: one hit per request, zero
  // misses, zero scans — and byte-identical content.
  auto warm = server.Execute(*requests);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->counters.cache_hits, requests->size());
  EXPECT_EQ(warm->counters.cache_misses, 0u);
  EXPECT_EQ(warm->counters.bytes_scanned, 0u);
  ExpectSameResults(*cold, *warm);

  // And again: hit counts are a deterministic function of the workload.
  auto warm2 = server.Execute(*requests);
  ASSERT_TRUE(warm2.ok());
  EXPECT_EQ(warm2->counters.cache_hits, requests->size());
  EXPECT_EQ(warm2->counters.cache_misses, 0u);
}

TEST(ServingTest, TempBytesReturnToPinnedBaseline) {
  Server server(SmallLineitem());
  const std::vector<std::string> specs = {
      kSpec,
      "PAIRS(l_returnflag, l_linestatus, l_shipmode)",
      kSpec,
  };
  for (const std::string& spec : specs) {
    auto r = server.Execute(spec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Everything still registered in the catalog is pinned by the cache.
    ASSERT_NE(server.cache(), nullptr);
    EXPECT_EQ(server.catalog()->temp_bytes(), server.cache()->pinned_bytes());
  }
}

TEST(ServingTest, SupersetViewServedByReaggregation) {
  Server server(SmallLineitem());
  // Warm the cache with the pair aggregate only.
  auto pair = server.Execute("((l_returnflag, l_linestatus))");
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  // The single-column requests are strict subsets of the pinned pair view:
  // both must be routed to it (re-aggregation over a 6-row table beats any
  // base scan) and the answers must match direct execution.
  auto singles = server.Execute("SINGLE(l_returnflag, l_linestatus)");
  ASSERT_TRUE(singles.ok()) << singles.status().ToString();
  EXPECT_EQ(singles->counters.cache_hits, 2u);
  // Each re-aggregation reads only the 6-row pinned view, never the base
  // relation.
  EXPECT_EQ(singles->counters.rows_scanned, 12u);

  Session session(SmallLineitem());
  auto direct = session.Execute("SINGLE(l_returnflag, l_linestatus)");
  ASSERT_TRUE(direct.ok());
  ExpectSameResults(*direct, *singles);
}

TEST(ServingTest, CoalescingSharesOneExecution) {
  ServerOptions options;
  options.pool_size = 1;  // deterministic: the worker is busy with `head`
  Server server(SmallLineitem(), options);

  auto head = server.Submit("SINGLE(l_shipdate, l_comment)");
  ASSERT_TRUE(head.ok());
  auto a = server.Submit(kSpec);
  auto b = server.Submit(kSpec);  // identical while `a` is still queued
  ASSERT_TRUE(a.ok() && b.ok());

  auto ra = a->Get();
  auto rb = b->Get();
  ASSERT_TRUE(ra.ok() && rb.ok());
  ExpectSameResults(*ra, *rb);
  EXPECT_TRUE(head->Get().ok());
  EXPECT_EQ(server.stats().requests_coalesced, 1u);
  // The coalesced submission never became its own job.
  EXPECT_EQ(server.stats().requests_served, 2u);
}

TEST(ServingTest, CacheDisabledStillCorrectUnderConcurrency) {
  ServerOptions options;
  options.enable_aggregate_cache = false;
  options.coalesce_identical_requests = false;
  options.pool_size = 4;
  Server server(SmallLineitem(), options);
  EXPECT_EQ(server.cache(), nullptr);

  std::vector<Server::Ticket> tickets;
  for (int i = 0; i < 6; ++i) tickets.push_back(*server.Submit(kSpec));
  Session session(SmallLineitem());
  auto direct = session.Execute(kSpec);
  ASSERT_TRUE(direct.ok());
  for (auto& t : tickets) {
    auto r = t.Get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->counters.cache_hits, 0u);
    ExpectSameResults(*direct, *r);
  }
}

TEST(ServingTest, TinyCacheBudgetEvictsButServesCorrectly) {
  ServerOptions options;
  options.cache_budget_bytes = 512;  // admits at most a tiny aggregate
  Server server(SmallLineitem(), options);
  for (int round = 0; round < 2; ++round) {
    auto r = server.Execute(kSpec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_LE(server.cache()->pinned_bytes(), 512u);
  }
  const AggregateCacheStats cache = server.stats().cache;
  // Offers beyond the budget were declined or evicted, never over-pinned.
  EXPECT_GT(cache.declined + cache.evictions, 0u);
  EXPECT_EQ(server.catalog()->temp_bytes(), server.cache()->pinned_bytes());
}

TEST(ServingTest, GovernorArbitratesAcrossRequestsAndCache) {
  ServerOptions options;
  options.global_storage_budget_bytes = 4.0 * 1024 * 1024;
  options.coalesce_identical_requests = false;
  options.pool_size = 4;
  Server server(SmallLineitem(), options);
  ASSERT_NE(server.governor(), nullptr);

  std::vector<Server::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(*server.Submit(
        "PAIRS(l_returnflag, l_linestatus, l_shipmode, l_shipinstruct)"));
  }
  for (auto& t : tickets) {
    auto r = t.Get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Once all plans finish, the only outstanding reservations are the
  // cache's pinned bytes — per-plan reservations are flushed on exit (up
  // to float residue from out-of-order reserve/release arithmetic).
  EXPECT_NEAR(server.governor()->reserved(),
              static_cast<double>(server.cache()->pinned_bytes()), 1.0);
  EXPECT_EQ(server.catalog()->temp_bytes(), server.cache()->pinned_bytes());
}

// Staleness under concurrent ingestion: AppendBatch interleaved with warm
// Submits from client threads. Every response must content-match the base
// generation it was admitted against (result->base_version) — fully-old or
// fully-new, never a torn mix of generations.
TEST(ServingTest, ResponsesMatchTheirAdmittedVersionUnderIngest) {
  TablePtr base = SmallLineitem();
  ServerOptions options;
  options.pool_size = 4;
  options.refresh_stats_on_ingest = false;  // keep batches cheap
  Server server(base, options);
  auto requests = server.Parse(kSpec);
  ASSERT_TRUE(requests.ok());
  ASSERT_TRUE(server.Execute(*requests).ok());  // warm the cache at v0

  constexpr int kBatches = 6;
  constexpr int kRowsPerBatch = 400;

  // Precompute the expected result content for every generation by growing
  // a private copy of the base through the same deterministic batches.
  std::vector<std::vector<Value>> all_rows;
  {
    Rng rng(77);
    for (int i = 0; i < kBatches * kRowsPerBatch; ++i) {
      all_rows.push_back(base->Row(rng.Uniform(base->num_rows())));
    }
  }
  std::vector<Result<ExecutionResult>> expected;
  {
    Catalog scratch;
    ASSERT_TRUE(scratch.RegisterBase(base).ok());
    Ingestor ingestor(&scratch);
    TablePtr generation = base;
    for (int v = 0; v <= kBatches; ++v) {
      Session session(generation);
      expected.push_back(session.Execute(kSpec));
      ASSERT_TRUE(expected.back().ok());
      if (v < kBatches) {
        std::vector<std::vector<Value>> batch(
            all_rows.begin() + v * kRowsPerBatch,
            all_rows.begin() + (v + 1) * kRowsPerBatch);
        auto applied = ingestor.AppendBatch(base->name(), batch);
        ASSERT_TRUE(applied.ok());
        generation = applied->base;
      }
    }
  }

  // Race readers against the ingest thread.
  std::vector<std::thread> readers;
  std::mutex out_mu;
  std::vector<Result<ExecutionResult>> responses;
  for (int c = 0; c < 4; ++c) {
    readers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto r = server.Execute(*requests);
        std::lock_guard<std::mutex> lock(out_mu);
        responses.push_back(std::move(r));
      }
    });
  }
  for (int v = 0; v < kBatches; ++v) {
    std::vector<std::vector<Value>> batch(
        all_rows.begin() + v * kRowsPerBatch,
        all_rows.begin() + (v + 1) * kRowsPerBatch);
    auto applied = server.AppendBatch(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(applied->version, static_cast<uint64_t>(v + 1));
    EXPECT_EQ(applied->entries_dropped, 0u);
  }
  for (std::thread& t : readers) t.join();

  ASSERT_EQ(responses.size(), 32u);
  for (const auto& r : responses) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_LE(r->base_version, static_cast<uint64_t>(kBatches));
    ExpectSameResults(*expected[r->base_version], *r);
  }
  EXPECT_EQ(server.base_version(), static_cast<uint64_t>(kBatches));
  EXPECT_EQ(server.stats().rows_ingested,
            static_cast<uint64_t>(kBatches * kRowsPerBatch));
}

// The refresh counters are deterministic for a serial warm -> append ->
// warm schedule: every live entry is refreshed exactly once per batch, and
// the warm hit count is unchanged by ingestion.
TEST(ServingTest, CacheRefreshCountersAreDeterministic) {
  auto run_once = [] {
    ServerOptions options;
    options.refresh_stats_on_ingest = false;
    Server server(SmallLineitem(), options);
    auto requests = server.Parse(kSpec);
    EXPECT_TRUE(requests.ok());
    EXPECT_TRUE(server.Execute(*requests).ok());
    const uint64_t entries = server.stats().cache.entries;
    EXPECT_GT(entries, 0u);

    Rng rng(5);
    for (int b = 0; b < 3; ++b) {
      std::vector<std::vector<Value>> rows;
      for (int i = 0; i < 100; ++i) {
        rows.push_back(
            server.base().Row(rng.Uniform(server.base().num_rows())));
      }
      auto applied = server.AppendBatch(rows);
      EXPECT_TRUE(applied.ok());
      EXPECT_EQ(applied->entries_refreshed, entries);
      auto warm = server.Execute(*requests);
      EXPECT_TRUE(warm.ok());
      EXPECT_EQ(warm->counters.cache_hits, requests->size());
      EXPECT_EQ(warm->counters.bytes_scanned, 0u);
    }
    return server.stats();
  };

  const ServerStats a = run_once();
  const ServerStats b = run_once();
  EXPECT_EQ(a.cache.refreshes, b.cache.refreshes);
  EXPECT_EQ(a.cache.refreshes, 3u * a.cache.entries);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.evictions, 0u);
  EXPECT_EQ(b.cache.evictions, 0u);
}

TEST(ServingTest, SubmitAfterShutdownIsCancelled) {
  Server* server = new Server(SmallLineitem());
  auto ok = server->Execute(kSpec);
  ASSERT_TRUE(ok.ok());
  delete server;  // drains and joins

  Server alive(SmallLineitem());
  auto t = alive.Submit(kSpec);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->Get().ok());
}

}  // namespace
}  // namespace gbmqo
