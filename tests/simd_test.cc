// Bit-exact parity tests for the runtime-dispatched SIMD primitives
// (exec/simd.h): every vector-tier primitive must reproduce the scalar
// tier exactly, across ragged tail lengths, the full int64 range of the
// exact int64→double widening, and IEEE edge values (NaN, ±0, ±inf).
#include "exec/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gbmqo {
namespace {

// Lengths crossing the vector widths (4/8 lanes) and the 64-row bitmap
// word, plus empty and a large ragged size.
const size_t kLens[] = {0, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65, 127, 128, 1000};

constexpr simd::Cmp kAllCmps[] = {simd::Cmp::kEq, simd::Cmp::kNe,
                                  simd::Cmp::kLt, simd::Cmp::kLe,
                                  simd::Cmp::kGt, simd::Cmp::kGe};

bool HasVectorTier() { return DetectedSimdLevel() != SimdLevel::kScalar; }

TEST(SimdDispatchTest, DetectionAndOverrides) {
  const SimdLevel detected = DetectedSimdLevel();
#if defined(GBMQO_SIMD_X86)
  EXPECT_TRUE(detected == SimdLevel::kScalar || detected == SimdLevel::kAVX2);
#elif defined(GBMQO_SIMD_NEON)
  EXPECT_EQ(detected, SimdLevel::kNEON);
#else
  EXPECT_EQ(detected, SimdLevel::kScalar);
#endif
  // force_scalar pins the effective level; without it the detected level
  // passes through.
  EXPECT_EQ(EffectiveSimdLevel(true), SimdLevel::kScalar);
  EXPECT_EQ(EffectiveSimdLevel(false), detected);
  // Name strings exist for every tier.
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_NE(std::string(SimdLevelName(detected)), "");
}

TEST(SimdDispatchTest, DisableEnvForcesScalar) {
  // DetectSimdLevelUncached re-reads the environment, so the knob is
  // testable without a fresh process. "0" and empty mean "not disabled".
  ASSERT_EQ(setenv("GBMQO_DISABLE_SIMD", "1", 1), 0);
  EXPECT_EQ(DetectSimdLevelUncached(), SimdLevel::kScalar);
  ASSERT_EQ(setenv("GBMQO_DISABLE_SIMD", "0", 1), 0);
  const SimdLevel enabled = DetectSimdLevelUncached();
  ASSERT_EQ(unsetenv("GBMQO_DISABLE_SIMD"), 0);
  EXPECT_EQ(DetectSimdLevelUncached(), enabled);
}

TEST(SimdKernelTest, OrShiftedCodesMatchesScalar) {
  if (!HasVectorTier()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(1);
  for (size_t n : kLens) {
    SCOPED_TRACE(n);
    std::vector<uint64_t> codes(n);
    for (auto& c : codes) c = 50 + rng.Uniform(1u << 20);
    for (int shift : {0, 1, 13, 40, 63}) {
      std::vector<uint64_t> a(n, 0x0101010101010101ull);
      std::vector<uint64_t> b = a;
      simd::OrShiftedCodes(SimdLevel::kScalar, codes.data(), n, 50, shift,
                           a.data());
      simd::OrShiftedCodes(DetectedSimdLevel(), codes.data(), n, 50, shift,
                           b.data());
      EXPECT_EQ(a, b) << "shift " << shift;
    }
  }
}

TEST(SimdKernelTest, AddScaledDigitsMatchesScalar) {
  if (!HasVectorTier()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(2);
  for (size_t n : kLens) {
    SCOPED_TRACE(n);
    std::vector<uint64_t> codes(n);
    for (auto& c : codes) c = 7 + rng.Uniform(1000);
    for (uint32_t stride : {1u, 3u, 256u, 65537u}) {
      std::vector<uint32_t> a(n, 5), b(n, 5);
      simd::AddScaledDigits(SimdLevel::kScalar, codes.data(), n, 7, stride,
                            a.data());
      simd::AddScaledDigits(DetectedSimdLevel(), codes.data(), n, 7, stride,
                            b.data());
      EXPECT_EQ(a, b) << "stride " << stride;
    }
    // The wrapping base trick used for nullable dense columns: base = min-1
    // makes code - base == (code - min) + 1, including when min == 0 (base
    // wraps to UINT64_MAX).
    std::vector<uint32_t> a(n, 0), b(n, 0);
    simd::AddScaledDigits(SimdLevel::kScalar, codes.data(), n,
                          static_cast<uint64_t>(7) - 1, 10, a.data());
    simd::AddScaledDigits(DetectedSimdLevel(), codes.data(), n,
                          static_cast<uint64_t>(7) - 1, 10, b.data());
    EXPECT_EQ(a, b);
  }
}

TEST(SimdKernelTest, CompareDoublesBitmapMatchesScalarWithIeeeEdges) {
  if (!HasVectorTier()) GTEST_SKIP() << "no vector tier on this host";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Rng rng(3);
  for (size_t n : kLens) {
    SCOPED_TRACE(n);
    std::vector<double> vals(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(8)) {
        case 0: vals[i] = nan; break;
        case 1: vals[i] = inf; break;
        case 2: vals[i] = -inf; break;
        case 3: vals[i] = 0.0; break;
        case 4: vals[i] = -0.0; break;
        default:
          vals[i] = static_cast<double>(rng.Uniform(2000)) / 16.0 - 60.0;
      }
    }
    const size_t nwords = (n + 63) / 64;
    for (simd::Cmp op : kAllCmps) {
      for (double lit : {3.25, 0.0, -inf}) {
        std::vector<uint64_t> a(nwords, 0), b(nwords, 0);
        simd::CompareDoublesBitmap(SimdLevel::kScalar, vals.data(), n, op,
                                   lit, a.data());
        simd::CompareDoublesBitmap(DetectedSimdLevel(), vals.data(), n, op,
                                   lit, b.data());
        EXPECT_EQ(a, b) << "op " << static_cast<int>(op) << " lit " << lit;
      }
    }
    // NaN literal: every ordered compare false, != true — on both tiers.
    std::vector<uint64_t> a(nwords, 0), b(nwords, 0);
    simd::CompareDoublesBitmap(SimdLevel::kScalar, vals.data(), n,
                               simd::Cmp::kNe, nan, a.data());
    simd::CompareDoublesBitmap(DetectedSimdLevel(), vals.data(), n,
                               simd::Cmp::kNe, nan, b.data());
    EXPECT_EQ(a, b);
  }
}

TEST(SimdKernelTest, CompareInt64BitmapExactConversionFullRange) {
  if (!HasVectorTier()) GTEST_SKIP() << "no vector tier on this host";
  // Values where a sloppy int64→double conversion diverges from the exact
  // static_cast rounding: around ±2^53, the int64 extremes, and mixtures.
  const int64_t big = int64_t{1} << 53;
  std::vector<int64_t> edge = {0,
                               1,
                               -1,
                               big - 1,
                               big,
                               big + 1,
                               big + 2,
                               -big - 1,
                               -big,
                               -(big + 1),
                               std::numeric_limits<int64_t>::max(),
                               std::numeric_limits<int64_t>::max() - 1,
                               std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::min() + 1};
  Rng rng(4);
  for (size_t n : kLens) {
    SCOPED_TRACE(n);
    std::vector<int64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = rng.Bernoulli(0.5)
                    ? edge[rng.Uniform(edge.size())]
                    : static_cast<int64_t>(rng.Uniform(1u << 30)) - (1 << 29);
    }
    const size_t nwords = (n + 63) / 64;
    for (simd::Cmp op : kAllCmps) {
      for (double lit : {0.0, 9007199254740993.0, -2.5e18, 40.0}) {
        std::vector<uint64_t> a(nwords, 0), b(nwords, 0);
        simd::CompareInt64Bitmap(SimdLevel::kScalar, vals.data(), n, op, lit,
                                 a.data());
        simd::CompareInt64Bitmap(DetectedSimdLevel(), vals.data(), n, op,
                                 lit, b.data());
        EXPECT_EQ(a, b) << "op " << static_cast<int>(op) << " lit " << lit;
      }
    }
  }
}

TEST(SimdKernelTest, BitmapWordCombines) {
  Rng rng(5);
  for (size_t nwords : {size_t{0}, size_t{1}, size_t{5}, size_t{33}}) {
    std::vector<uint64_t> dst1(nwords), dst2(nwords), src(nwords);
    for (size_t i = 0; i < nwords; ++i) {
      dst1[i] = rng.Next();
      src[i] = rng.Next();
    }
    dst2 = dst1;
    std::vector<uint64_t> expect_and(nwords), expect_andnot(nwords);
    for (size_t i = 0; i < nwords; ++i) {
      expect_and[i] = dst1[i] & src[i];
      expect_andnot[i] = dst1[i] & ~src[i];
    }
    simd::AndWords(dst1.data(), src.data(), nwords);
    EXPECT_EQ(dst1, expect_and);
    simd::AndNotWords(dst2.data(), src.data(), nwords);
    EXPECT_EQ(dst2, expect_andnot);
  }
}

TEST(SimdKernelTest, ShiftEqMask8MatchesScalar) {
  if (!HasVectorTier()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t v[8];
    for (auto& x : v) x = static_cast<uint32_t>(rng.Next());
    for (int shift : {0, 1, 6, 28, 31}) {
      const uint32_t target = (v[rng.Uniform(8)] >> shift);
      EXPECT_EQ(simd::ShiftEqMask8(SimdLevel::kScalar, v, shift, target),
                simd::ShiftEqMask8(DetectedSimdLevel(), v, shift, target))
          << "shift " << shift;
    }
  }
}

TEST(SimdKernelTest, ScanGroup16FindsTagsAndEmpties) {
  // ScanGroup16 has no tier dispatch (baseline ISA), so verify it against
  // a hand computation directly.
  uint8_t g[16];
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    for (auto& x : g) {
      const uint64_t r = rng.Uniform(4);
      x = r == 0 ? 0 : (r == 1 ? 0x83 : static_cast<uint8_t>(rng.Next()));
    }
    const uint8_t tag = 0x83;
    uint32_t eq = 0, zero = 0;
    simd::ScanGroup16(g, tag, &eq, &zero);
    uint32_t want_eq = 0, want_zero = 0;
    for (int i = 0; i < 16; ++i) {
      if (g[i] == tag) want_eq |= 1u << i;
      if (g[i] == 0) want_zero |= 1u << i;
    }
    EXPECT_EQ(eq, want_eq);
    EXPECT_EQ(zero, want_zero);
  }
}

}  // namespace
}  // namespace gbmqo
