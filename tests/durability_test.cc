// Durability-layer tests: WAL record framing and replay (torn-tail
// truncate-and-continue vs mid-log corruption refusal), checkpoint
// write/read round trips under the tmp-then-rename discipline, stale-file
// reaping by process liveness, and the server-level contract — a Server
// restarted on its wal_directory rebuilds bit-identical serving state
// (same base_version, same query results, same warm-cache hits) from the
// newest valid checkpoint plus the WAL tail.
//
// The randomized kill-and-recover differential harness at the bottom runs
// 54 seeded trials (6 seeds x 3 crash modes x 1/4/8 workers): a crash is
// injected at the WAL append (torn write), the checkpoint write (failed
// fsync), or the first recovery attempt (bit flip, abandoned), the server
// is destroyed and recovered, the interrupted schedule is finished, and
// every query result is compared raw-bit against an undisturbed reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "api/server.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/aggregate_cache.h"
#include "core/plan_executor.h"
#include "data/tpch_gen.h"
#include "exec/query_executor.h"
#include "exec/spill_partitioner.h"
#include "storage/checkpoint.h"
#include "storage/storage_governor.h"
#include "storage/wal.h"

namespace gbmqo {
namespace {

namespace fs = std::filesystem;

// ---- scratch directories ----------------------------------------------------

/// Unique scratch directory removed (with contents) at scope exit.
class TempDirGuard {
 public:
  explicit TempDirGuard(const std::string& tag) {
    static std::atomic<uint64_t> seq{0};
    dir_ = (fs::temp_directory_path() /
            ("gbmqo-durability-test-" + std::to_string(CurrentProcessId()) +
             "-" + tag + "-" +
             std::to_string(seq.fetch_add(1, std::memory_order_relaxed))))
               .string();
    fs::create_directories(dir_);
  }
  ~TempDirGuard() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

// ---- result comparison (as in serving_test.cc) ------------------------------

std::map<std::string, std::vector<double>> Flatten(const Table& t, int ng) {
  std::map<std::string, std::vector<double>> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < ng; ++c) {
      key += t.column(c).ValueAt(row).ToString() + "|";
    }
    std::vector<double> aggs;
    for (int c = ng; c < t.schema().num_columns(); ++c) {
      aggs.push_back(t.column(c).IsNull(row) ? -1e308
                                             : t.column(c).NumericAt(row));
    }
    out[key] = std::move(aggs);
  }
  return out;
}

/// Bit-identity up to row order: same group keys, same aggregate values.
void ExpectSameResults(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, ta] : a.results) {
    ASSERT_TRUE(b.results.count(cols)) << cols.ToString();
    const TablePtr& tb = b.results.at(cols);
    auto fa = Flatten(*ta, cols.size());
    auto fb = Flatten(*tb, cols.size());
    ASSERT_EQ(fa.size(), fb.size()) << cols.ToString();
    for (const auto& [key, aggs] : fa) {
      ASSERT_TRUE(fb.count(key)) << cols.ToString() << " " << key;
      ASSERT_EQ(aggs.size(), fb[key].size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        EXPECT_EQ(aggs[i], fb[key][i]) << cols.ToString() << " " << key;
      }
    }
  }
}

std::vector<std::vector<Value>> SampleRows(Rng* rng, const Table& donor,
                                           size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(donor.Row(rng->Uniform(donor.num_rows())));
  }
  return rows;
}

std::vector<std::vector<Value>> TestBatch(uint64_t salt, size_t n) {
  TablePtr donor = GenerateLineitem({.rows = 500, .seed = 900 + salt});
  Rng rng(salt);
  return SampleRows(&rng, *donor, n);
}

// ---- WAL framing and replay -------------------------------------------------

TEST(WalTest, EncodeDecodeRoundTripsEveryTag) {
  std::vector<std::vector<Value>> rows;
  rows.push_back({Value(Null{}), Value(static_cast<int64_t>(0)),
                  Value(std::string())});
  rows.push_back({Value(static_cast<int64_t>(INT64_MIN)),
                  Value(static_cast<int64_t>(INT64_MAX)), Value(-0.0)});
  rows.push_back({Value(std::string("with\0nul", 8)), Value(1.5e-300),
                  Value(std::string(1000, 'x'))});
  rows.push_back({});  // empty row
  std::string buf;
  EncodeRows(rows, &buf);
  std::vector<std::vector<Value>> decoded;
  ASSERT_TRUE(DecodeRows(reinterpret_cast<const uint8_t*>(buf.data()),
                         buf.size(), &decoded)
                  .ok());
  ASSERT_EQ(decoded.size(), rows.size());
  EXPECT_TRUE(decoded[0][0].is_null());
  EXPECT_EQ(decoded[1][0].int64(), INT64_MIN);
  EXPECT_EQ(decoded[1][1].int64(), INT64_MAX);
  EXPECT_TRUE(std::signbit(decoded[1][2].dbl()));
  EXPECT_EQ(decoded[2][0].str(), std::string("with\0nul", 8));
  EXPECT_EQ(decoded[2][1].dbl(), 1.5e-300);
  EXPECT_EQ(decoded[2][2].str(), std::string(1000, 'x'));
  EXPECT_TRUE(decoded[3].empty());
}

TEST(WalTest, WriterReplayRoundTripAndApplyAfter) {
  TempDirGuard dir("wal-roundtrip");
  const std::string path = dir.path() + "/wal-0.log";
  {
    auto writer = WalWriter::Open(path, FsyncMode::kBatch, nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t v = 1; v <= 3; ++v) {
      ASSERT_TRUE((*writer)->Append(v, TestBatch(v, 5 * v)).ok());
    }
    EXPECT_GT((*writer)->bytes(), 0u);
  }
  std::vector<uint64_t> versions;
  std::vector<size_t> sizes;
  WalReplayReport report;
  ASSERT_TRUE(ReplayWal(path, /*apply_after=*/1,
                        [&](uint64_t v, std::vector<std::vector<Value>>&& r) {
                          versions.push_back(v);
                          sizes.push_back(r.size());
                          return Status::OK();
                        },
                        &report)
                  .ok());
  EXPECT_EQ(versions, (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(sizes, (std::vector<size_t>{10, 15}));
  EXPECT_EQ(report.records_seen, 3u);
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_FALSE(report.tail_truncated);
  EXPECT_EQ(report.bytes_replayed, fs::file_size(path));
  // Replayed rows are value-identical to what was appended.
  ASSERT_TRUE(ReplayWal(path, 2,
                        [&](uint64_t v, std::vector<std::vector<Value>>&& r) {
                          const auto expect = TestBatch(v, 5 * v);
                          EXPECT_EQ(r.size(), expect.size());
                          for (size_t i = 0; i < r.size(); ++i) {
                            for (size_t c = 0; c < r[i].size(); ++c) {
                              EXPECT_EQ(r[i][c].ToString(),
                                        expect[i][c].ToString());
                            }
                          }
                          return Status::OK();
                        },
                        nullptr)
                  .ok());
}

TEST(WalTest, TornTailIsTruncatedAndAppendsContinue) {
  TempDirGuard dir("wal-torn");
  const std::string path = dir.path() + "/wal-0.log";
  {
    auto writer = WalWriter::Open(path, FsyncMode::kBatch, nullptr);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(1, TestBatch(1, 8)).ok());
    ASSERT_TRUE((*writer)->Append(2, TestBatch(2, 8)).ok());
  }
  const uint64_t clean_size = fs::file_size(path);
  {
    // A crash mid-append: half a header reaches the disk.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[9] = "GWAL\x40\x00\x00\x00";
    ASSERT_EQ(std::fwrite(junk, 1, 9, f), 9u);
    std::fclose(f);
  }
  WalReplayReport report;
  uint64_t applied = 0;
  ASSERT_TRUE(ReplayWal(path, 0,
                        [&](uint64_t, std::vector<std::vector<Value>>&&) {
                          ++applied;
                          return Status::OK();
                        },
                        &report)
                  .ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_EQ(report.tail_dropped_bytes, 9u);
  EXPECT_EQ(fs::file_size(path), clean_size);  // truncated back

  // A writer reopened on the truncated log extends it cleanly.
  auto writer = WalWriter::Open(path, FsyncMode::kBatch, nullptr);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->bytes(), clean_size);
  ASSERT_TRUE((*writer)->Append(3, TestBatch(3, 4)).ok());
  writer->reset();
  applied = 0;
  ASSERT_TRUE(ReplayWal(path, 0,
                        [&](uint64_t, std::vector<std::vector<Value>>&&) {
                          ++applied;
                          return Status::OK();
                        },
                        nullptr)
                  .ok());
  EXPECT_EQ(applied, 3u);
}

TEST(WalTest, MidLogCorruptionRefusesReplay) {
  TempDirGuard dir("wal-corrupt");
  const std::string path = dir.path() + "/wal-0.log";
  {
    auto writer = WalWriter::Open(path, FsyncMode::kBatch, nullptr);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(1, TestBatch(1, 16)).ok());
    ASSERT_TRUE((*writer)->Append(2, TestBatch(2, 16)).ok());
  }
  {
    // Flip one payload byte inside the FIRST record: fully present but
    // CRC-invalid, which is corruption, not a torn tail.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  uint64_t applied = 0;
  const Status s = ReplayWal(path, 0,
                             [&](uint64_t, std::vector<std::vector<Value>>&&) {
                               ++applied;
                               return Status::OK();
                             },
                             nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.ToString();
  EXPECT_EQ(applied, 0u);  // nothing at or past the damage is admitted
}

TEST(WalTest, ShortWriteRestoresTailAndNamesFile) {
  TempDirGuard dir("wal-shortwrite");
  const std::string path = dir.path() + "/wal-0.log";
  auto writer = WalWriter::Open(path, FsyncMode::kBatch, nullptr);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(1, TestBatch(1, 8)).ok());
  const uint64_t clean = (*writer)->bytes();

  FaultInjector inj(7);
  inj.ArmOneShot(FaultSite::kDiskShortWrite, 0);
  Status failed;
  {
    ScopedFaultInjection scoped(&inj);
    failed = (*writer)->Append(2, TestBatch(2, 8));
  }
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find(path), std::string::npos) << failed.ToString();
  EXPECT_NE(failed.message().find("offset " + std::to_string(clean)),
            std::string::npos)
      << failed.ToString();
  EXPECT_EQ((*writer)->bytes(), clean);
  EXPECT_FALSE((*writer)->broken());

  // The log stayed clean: the retry lands exactly where the failure did.
  ASSERT_TRUE((*writer)->Append(2, TestBatch(2, 8)).ok());
  writer->reset();
  std::vector<uint64_t> versions;
  ASSERT_TRUE(ReplayWal(path, 0,
                        [&](uint64_t v, std::vector<std::vector<Value>>&&) {
                          versions.push_back(v);
                          return Status::OK();
                        },
                        nullptr)
                  .ok());
  EXPECT_EQ(versions, (std::vector<uint64_t>{1, 2}));
}

TEST(WalTest, EnospcSurfacesResourceExhaustedAndLeavesLogClean) {
  TempDirGuard dir("wal-enospc");
  auto writer =
      WalWriter::Open(dir.path() + "/wal-0.log", FsyncMode::kBatch, nullptr);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(1, TestBatch(1, 4)).ok());
  const uint64_t clean = (*writer)->bytes();
  FaultInjector inj(7);
  inj.ArmOneShot(FaultSite::kDiskEnospc, 0);
  Status failed;
  {
    ScopedFaultInjection scoped(&inj);
    failed = (*writer)->Append(2, TestBatch(2, 4));
  }
  EXPECT_TRUE(failed.IsResourceExhausted()) << failed.ToString();
  EXPECT_EQ((*writer)->bytes(), clean);
  ASSERT_TRUE((*writer)->Append(2, TestBatch(2, 4)).ok());
}

TEST(WalTest, TornWriteFaultBreaksWriterUntilReopen) {
  TempDirGuard dir("wal-torn-fault");
  const std::string path = dir.path() + "/wal-0.log";
  auto writer = WalWriter::Open(path, FsyncMode::kBatch, nullptr);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(1, TestBatch(1, 8)).ok());
  const uint64_t clean = (*writer)->bytes();

  FaultInjector inj(7);
  inj.ArmOneShot(FaultSite::kDiskTornWrite, 0);
  Status torn;
  {
    ScopedFaultInjection scoped(&inj);
    torn = (*writer)->Append(2, TestBatch(2, 8));
  }
  EXPECT_FALSE(torn.ok());
  EXPECT_TRUE((*writer)->broken());
  // The crash simulation leaves the torn bytes on disk...
  EXPECT_GT(fs::file_size(path), clean);
  // ...and the broken writer fails fast, like a dead process's log.
  EXPECT_FALSE((*writer)->Append(3, TestBatch(3, 8)).ok());
  writer->reset();

  // Replay truncates the torn record; only the durable prefix survives.
  WalReplayReport report;
  uint64_t applied = 0;
  ASSERT_TRUE(ReplayWal(path, 0,
                        [&](uint64_t, std::vector<std::vector<Value>>&&) {
                          ++applied;
                          return Status::OK();
                        },
                        &report)
                  .ok());
  EXPECT_EQ(applied, 1u);
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_EQ(fs::file_size(path), clean);
}

// ---- checkpoints ------------------------------------------------------------

CheckpointImage MakeImage(uint64_t version, size_t base_rows) {
  CheckpointImage image;
  image.base_version = version;
  image.base = GenerateLineitem({.rows = base_rows, .seed = 40 + version});
  return image;
}

TEST(CheckpointTest, RoundTripIsBitIdentical) {
  TempDirGuard dir("ckp-roundtrip");
  CheckpointImage image = MakeImage(3, 800);
  ASSERT_TRUE(image.base->CreateIndex(ColumnSet{kReturnflag}).ok());

  // One cached COUNT(*)+SUM aggregate rides along, MRU order preserved.
  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, 1);
  const std::vector<AggRequest> aggs = {AggRequest{},
                                        AggRequest{AggKind::kSum, kQuantity}};
  Result<GroupByQuery> q = BuildGroupByOver(
      *image.base, true, image.base->schema(), ColumnSet{kReturnflag}, aggs);
  ASSERT_TRUE(q.ok());
  Result<TablePtr> agg =
      exec.ExecuteGroupBy(*image.base, *q, "ckp_entry", AggStrategy::kHash);
  ASSERT_TRUE(agg.ok());
  CheckpointCacheEntry entry;
  entry.columns_mask = ColumnSet{kReturnflag}.mask();
  entry.aggs = {{static_cast<int>(AggKind::kCountStar), -1},
                {static_cast<int>(AggKind::kSum), kQuantity}};
  entry.source_version = 3;
  entry.needs_recompute = false;
  entry.table = *agg;
  image.entries.push_back(entry);

  uint64_t bytes = 0;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), image, nullptr, &bytes).ok());
  EXPECT_GT(bytes, 0u);
  const std::string path = dir.path() + "/" + CheckpointFileName(3);
  EXPECT_EQ(fs::file_size(path), bytes);

  Result<CheckpointImage> loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->base_version, 3u);
  EXPECT_EQ(loaded->base->name(), image.base->name());
  EXPECT_EQ(loaded->base->num_rows(), image.base->num_rows());
  EXPECT_EQ(loaded->base->ByteSize(), image.base->ByteSize());
  EXPECT_EQ(loaded->base->indexes().size(), 1u);
  // Cell-by-cell identity, dictionary codes included (same ByteSize above
  // already implies identical dictionary layouts).
  for (int c = 0; c < image.base->schema().num_columns(); ++c) {
    for (size_t r = 0; r < image.base->num_rows(); r += 97) {
      EXPECT_EQ(loaded->base->column(c).ValueAt(r).ToString(),
                image.base->column(c).ValueAt(r).ToString());
    }
  }
  ASSERT_EQ(loaded->entries.size(), 1u);
  const CheckpointCacheEntry& e = loaded->entries[0];
  EXPECT_EQ(e.columns_mask, entry.columns_mask);
  ASSERT_EQ(e.aggs.size(), 2u);
  EXPECT_EQ(e.aggs[1].kind, static_cast<int>(AggKind::kSum));
  EXPECT_EQ(e.aggs[1].column, kQuantity);
  EXPECT_EQ(e.source_version, 3u);
  EXPECT_FALSE(e.needs_recompute);
  EXPECT_EQ(e.table->num_rows(), (*agg)->num_rows());
  EXPECT_EQ(e.table->ByteSize(), (*agg)->ByteSize());
}

TEST(CheckpointTest, FailedWriteLeavesDirectoryClean) {
  TempDirGuard dir("ckp-failedwrite");
  CheckpointImage image = MakeImage(1, 300);
  for (const FaultSite site :
       {FaultSite::kDiskShortWrite, FaultSite::kDiskFsync,
        FaultSite::kDiskEnospc}) {
    FaultInjector inj(7);
    inj.ArmProbability(site, 1.0);
    Status failed;
    {
      ScopedFaultInjection scoped(&inj);
      uint64_t bytes = 0;
      failed = WriteCheckpoint(dir.path(), image, nullptr, &bytes);
    }
    EXPECT_FALSE(failed.ok()) << FaultSiteName(site);
    // Neither a real checkpoint nor a tmp survives the failure.
    size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      (void)entry;
      ++files;
    }
    EXPECT_EQ(files, 0u) << FaultSiteName(site);
  }
  // And ENOSPC is distinguishable from a generic IO failure.
  FaultInjector inj(7);
  inj.ArmProbability(FaultSite::kDiskEnospc, 1.0);
  ScopedFaultInjection scoped(&inj);
  uint64_t bytes = 0;
  EXPECT_TRUE(
      WriteCheckpoint(dir.path(), image, nullptr, &bytes).IsResourceExhausted());
}

TEST(CheckpointTest, BitFlipOnReadIsRejected) {
  TempDirGuard dir("ckp-bitflip");
  CheckpointImage image = MakeImage(2, 300);
  uint64_t bytes = 0;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), image, nullptr, &bytes).ok());
  const std::string path = dir.path() + "/" + CheckpointFileName(2);
  FaultInjector inj(7);
  inj.ArmProbability(FaultSite::kDiskBitFlip, 1.0);
  ScopedFaultInjection scoped(&inj);
  Result<CheckpointImage> loaded = ReadCheckpoint(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInternal()) << loaded.status().ToString();
}

TEST(CheckpointTest, ListCheckpointsSortsAscending) {
  TempDirGuard dir("ckp-list");
  for (const uint64_t v : {7u, 2u, 11u}) {
    uint64_t bytes = 0;
    ASSERT_TRUE(WriteCheckpoint(dir.path(), MakeImage(v, 50), nullptr, &bytes)
                    .ok());
  }
  Result<std::vector<CheckpointRef>> list = ListCheckpoints(dir.path());
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].version, 2u);
  EXPECT_EQ((*list)[1].version, 7u);
  EXPECT_EQ((*list)[2].version, 11u);
}

// ---- stale-file reaping -----------------------------------------------------

#ifndef _WIN32
/// A pid that is guaranteed dead: a forked child that exited and was reaped.
uint64_t DeadPid() {
  const pid_t pid = fork();
  if (pid == 0) _exit(0);
  int status = 0;
  waitpid(pid, &status, 0);
  return static_cast<uint64_t>(pid);
}

TEST(ReaperTest, ProcessLiveness) {
  EXPECT_TRUE(ProcessAlive(CurrentProcessId()));
  EXPECT_FALSE(ProcessAlive(DeadPid()));
}

TEST(ReaperTest, SpillReapRemovesDeadPidDirsOnly) {
  TempDirGuard parent("spill-reap");
  const uint64_t dead = DeadPid();
  const fs::path dead_dir =
      fs::path(parent.path()) / ("gbmqo-spill-" + std::to_string(dead) + "-0");
  const fs::path live_dir =
      fs::path(parent.path()) /
      ("gbmqo-spill-" + std::to_string(CurrentProcessId()) + "-0");
  const fs::path unrelated = fs::path(parent.path()) / "keep-me";
  fs::create_directories(dead_dir);
  fs::create_directories(live_dir);
  fs::create_directories(unrelated);
  { std::FILE* f = std::fopen((dead_dir / "f0.bin").c_str(), "wb");
    std::fputs("orphan", f);
    std::fclose(f); }

  EXPECT_EQ(SpillFileSet::ReapStale(parent.path()), 1u);
  EXPECT_FALSE(fs::exists(dead_dir));
  EXPECT_TRUE(fs::exists(live_dir));   // pinned: its process is alive
  EXPECT_TRUE(fs::exists(unrelated));  // pinned: not a spill directory
  EXPECT_EQ(SpillFileSet::ReapStale(parent.path()), 0u);  // idempotent
}

TEST(ReaperTest, CheckpointTmpReapRemovesDeadPidFilesOnly) {
  TempDirGuard dir("ckp-reap");
  const uint64_t dead = DeadPid();
  const auto touch = [&](const std::string& name) {
    std::FILE* f = std::fopen((fs::path(dir.path()) / name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  };
  touch(CheckpointFileName(4) + ".tmp-" + std::to_string(dead));
  touch(CheckpointFileName(5) + ".tmp-" +
        std::to_string(CurrentProcessId()));
  touch("unrelated.tmp-" + std::to_string(dead));

  EXPECT_EQ(ReapStaleCheckpointTmps(dir.path()), 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) /
                          (CheckpointFileName(4) + ".tmp-" +
                           std::to_string(dead))));
  EXPECT_TRUE(fs::exists(fs::path(dir.path()) /
                         (CheckpointFileName(5) + ".tmp-" +
                          std::to_string(CurrentProcessId()))));
  EXPECT_TRUE(
      fs::exists(fs::path(dir.path()) /
                 ("unrelated.tmp-" + std::to_string(dead))));
}
#endif  // !_WIN32

// ---- server-level recovery --------------------------------------------------

ServerOptions DurableOptions(const std::string& wal_dir, int workers = 1) {
  ServerOptions options;
  options.pool_size = 2;
  options.session.parallelism = workers;
  options.wal_directory = wal_dir;
  options.fsync_mode = FsyncMode::kBatch;
  options.checkpoint_interval_bytes = 0;  // explicit Checkpoint() only
  return options;
}

TablePtr RecoveryBase() {
  static TablePtr table = GenerateLineitem({.rows = 3000, .seed = 21});
  return table;
}

const char* kRecoverySpec = "SINGLE(l_returnflag, l_shipmode)";

TEST(ServerDurabilityTest, RestartRebuildsBitIdenticalState) {
  TempDirGuard dir("srv-restart");

  // Reference: the same schedule on an undisturbed, non-durable server.
  Server reference(RecoveryBase(), ServerOptions{});
  for (uint64_t b = 1; b <= 4; ++b) {
    ASSERT_TRUE(reference.AppendBatch(TestBatch(b, 50 + 10 * b)).ok());
  }
  auto ref_result = reference.Execute(kRecoverySpec);
  ASSERT_TRUE(ref_result.ok());

  {
    Server first(RecoveryBase(), DurableOptions(dir.path()));
    ASSERT_TRUE(first.recovery_status().ok());
    for (uint64_t b = 1; b <= 2; ++b) {
      ASSERT_TRUE(first.AppendBatch(TestBatch(b, 50 + 10 * b)).ok());
    }
    // Warm the cache, then persist it with the base in a checkpoint.
    ASSERT_TRUE(first.Execute(kRecoverySpec).ok());
    ASSERT_TRUE(first.Checkpoint().ok());
    ASSERT_TRUE(first.AppendBatch(TestBatch(3, 80)).ok());
    // Batch 4 lives only in the WAL tail when the "crash" (destruction
    // without a further checkpoint) happens.
    ASSERT_TRUE(first.AppendBatch(TestBatch(4, 90)).ok());
  }

  Server second(RecoveryBase(), DurableOptions(dir.path()));
  ASSERT_TRUE(second.recovery_status().ok())
      << second.recovery_status().ToString();
  const ServerStats stats = second.stats();
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.base_version, 4u);
  EXPECT_EQ(stats.recovery_checkpoint_version, 2u);
  EXPECT_EQ(stats.recovery_records_applied, 2u);  // batches 3 and 4
  EXPECT_EQ(stats.base_version, reference.stats().base_version);

  // Same rows, same values as the undisturbed run.
  auto rec_result = second.Execute(kRecoverySpec);
  ASSERT_TRUE(rec_result.ok());
  ExpectSameResults(*ref_result, *rec_result);
  EXPECT_EQ(second.current_base()->num_rows(),
            reference.current_base()->num_rows());
  EXPECT_EQ(second.current_base()->ByteSize(),
            reference.current_base()->ByteSize());
}

TEST(ServerDurabilityTest, RecoveredCacheServesWarmHits) {
  TempDirGuard dir("srv-warm");
  {
    Server first(RecoveryBase(), DurableOptions(dir.path()));
    ASSERT_TRUE(first.Execute(kRecoverySpec).ok());  // materialize + admit
    ASSERT_TRUE(first.Checkpoint().ok());
    EXPECT_GT(first.stats().cache.entries, 0u);
  }
  Server second(RecoveryBase(), DurableOptions(dir.path()));
  ASSERT_TRUE(second.recovery_status().ok());
  EXPECT_GT(second.stats().cache.entries, 0u);  // restored before any request
  auto served = second.Execute(kRecoverySpec);
  ASSERT_TRUE(served.ok());
  // Served from the recovered pinned views: zero base-relation scans.
  EXPECT_GT(served->counters.cache_hits, 0u);
  EXPECT_EQ(served->counters.rows_scanned, 0u);
  EXPECT_GT(second.stats().cache.hits, 0u);
}

TEST(ServerDurabilityTest, TornAppendKeepsOldVersionAndRecoveryTruncates) {
  TempDirGuard dir("srv-torn");
  {
    Server server(RecoveryBase(), DurableOptions(dir.path()));
    ASSERT_TRUE(server.AppendBatch(TestBatch(1, 60)).ok());
    FaultInjector inj(7);
    inj.ArmOneShot(FaultSite::kDiskTornWrite, 0);
    Status torn;
    {
      ScopedFaultInjection scoped(&inj);
      torn = server.AppendBatch(TestBatch(2, 60)).status();
    }
    EXPECT_FALSE(torn.ok());
    // The failed batch was never applied: log-before-apply.
    EXPECT_EQ(server.base_version(), 1u);
    // The broken writer rejects further ingestion rather than losing it.
    EXPECT_FALSE(server.AppendBatch(TestBatch(3, 60)).ok());
    EXPECT_EQ(server.stats().requests_failed, 0u);
  }
  Server recovered(RecoveryBase(), DurableOptions(dir.path()));
  ASSERT_TRUE(recovered.recovery_status().ok())
      << recovered.recovery_status().ToString();
  EXPECT_EQ(recovered.base_version(), 1u);
  EXPECT_TRUE(recovered.stats().recovery_tail_truncated);
  // The truncated log accepts the batch that tore.
  ASSERT_TRUE(recovered.AppendBatch(TestBatch(2, 60)).ok());
  EXPECT_EQ(recovered.base_version(), 2u);
}

TEST(ServerDurabilityTest, CorruptNewestCheckpointFallsBackToOlder) {
  TempDirGuard dir("srv-fallback");
  {
    Server server(RecoveryBase(), DurableOptions(dir.path()));
    ASSERT_TRUE(server.AppendBatch(TestBatch(1, 60)).ok());
    ASSERT_TRUE(server.Checkpoint().ok());  // checkpoint @1
    ASSERT_TRUE(server.AppendBatch(TestBatch(2, 60)).ok());
    ASSERT_TRUE(server.Checkpoint().ok());  // checkpoint @2 (both retained)
    ASSERT_TRUE(server.AppendBatch(TestBatch(3, 60)).ok());
  }
  // Bit rot in the newest checkpoint's payload.
  const std::string newest = dir.path() + "/" + CheckpointFileName(2);
  ASSERT_TRUE(fs::exists(newest));
  {
    std::FILE* f = std::fopen(newest.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(fs::file_size(newest) / 2),
                         SEEK_SET),
              0);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x08, f);
    std::fclose(f);
  }
  Server recovered(RecoveryBase(), DurableOptions(dir.path()));
  ASSERT_TRUE(recovered.recovery_status().ok())
      << recovered.recovery_status().ToString();
  const ServerStats stats = recovered.stats();
  EXPECT_EQ(stats.recovery_checkpoints_skipped, 1u);
  EXPECT_EQ(stats.recovery_checkpoint_version, 1u);
  EXPECT_EQ(stats.recovery_records_applied, 2u);  // batches 2 and 3 replayed
  EXPECT_EQ(stats.base_version, 3u);
}

TEST(ServerDurabilityTest, AutoCheckpointRotatesAtInterval) {
  TempDirGuard dir("srv-auto");
  ServerOptions options = DurableOptions(dir.path());
  options.checkpoint_interval_bytes = 1;  // every batch crosses it
  Server server(RecoveryBase(), options);
  ASSERT_TRUE(server.AppendBatch(TestBatch(1, 40)).ok());
  ASSERT_TRUE(server.AppendBatch(TestBatch(2, 40)).ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.checkpoints_written, 2u);
  EXPECT_EQ(stats.last_checkpoint_version, 2u);
  EXPECT_EQ(stats.wal_bytes, 0u);  // rotated onto a fresh segment
}

TEST(ServerDurabilityTest, GovernorDiskLedgerMatchesLiveFiles) {
  TempDirGuard dir("srv-ledger");
  ServerOptions options = DurableOptions(dir.path());
  options.global_storage_budget_bytes = 512.0 * 1024 * 1024;
  uint64_t ram_baseline = 0;
  const auto live_durable_bytes = [&] {
    uint64_t total = 0;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      total += fs::file_size(entry.path());
    }
    return total;
  };
  {
    Server server(RecoveryBase(), options);
    ASSERT_TRUE(server.AppendBatch(TestBatch(1, 80)).ok());
    ASSERT_TRUE(server.AppendBatch(TestBatch(2, 80)).ok());
    EXPECT_EQ(server.governor()->disk_reserved(),
              static_cast<double>(live_durable_bytes()));
    ASSERT_TRUE(server.Checkpoint().ok());
    EXPECT_EQ(server.governor()->disk_reserved(),
              static_cast<double>(live_durable_bytes()));
    ASSERT_TRUE(server.AppendBatch(TestBatch(3, 80)).ok());
    EXPECT_EQ(server.governor()->disk_reserved(),
              static_cast<double>(live_durable_bytes()));
    ram_baseline = server.stats().cache.pinned_bytes;
    EXPECT_EQ(server.governor()->reserved(), static_cast<double>(ram_baseline));
  }
  // A recovered server adopts the surviving files into a balanced ledger.
  Server recovered(RecoveryBase(), options);
  ASSERT_TRUE(recovered.recovery_status().ok());
  EXPECT_EQ(recovered.governor()->disk_reserved(),
            static_cast<double>(live_durable_bytes()));
}

TEST(ServerDurabilityTest, RecoverOnStartFalseDiscardsSurvivingLogs) {
  TempDirGuard dir("srv-norecover");
  {
    Server server(RecoveryBase(), DurableOptions(dir.path()));
    ASSERT_TRUE(server.AppendBatch(TestBatch(1, 60)).ok());
    ASSERT_TRUE(server.Checkpoint().ok());
    ASSERT_TRUE(server.AppendBatch(TestBatch(2, 60)).ok());
  }
  ServerOptions options = DurableOptions(dir.path());
  options.recover_on_start = false;
  Server fresh(RecoveryBase(), options);
  ASSERT_TRUE(fresh.recovery_status().ok());
  EXPECT_EQ(fresh.base_version(), 0u);
  EXPECT_FALSE(fresh.stats().recovered);
  // The fresh world logs from scratch; old versions cannot resurface.
  ASSERT_TRUE(fresh.AppendBatch(TestBatch(9, 30)).ok());
  EXPECT_EQ(fresh.base_version(), 1u);
}

// ---- randomized kill-and-recover differential harness -----------------------

enum class CrashMode {
  kTornWalAppend,      ///< torn write during a WAL append, then die
  kCheckpointFailure,  ///< checkpoint write fails (fsync), then die
  kAbandonedRecovery,  ///< first recovery attempt hits bit rot, abandoned
};

const char* CrashModeName(CrashMode mode) {
  switch (mode) {
    case CrashMode::kTornWalAppend: return "torn_wal_append";
    case CrashMode::kCheckpointFailure: return "checkpoint_failure";
    case CrashMode::kAbandonedRecovery: return "abandoned_recovery";
  }
  return "?";
}

void RunKillRecoverTrial(uint64_t seed, CrashMode mode, int workers) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " mode=" +
               CrashModeName(mode) + " workers=" + std::to_string(workers));
  TempDirGuard dir("kill-recover");
  Rng rng(seed * 1000 + static_cast<uint64_t>(mode));

  TablePtr base =
      GenerateLineitem({.rows = 1500 + rng.Uniform(1500),
                        .zipf_theta = 0.6,
                        .seed = 100 + seed});
  TablePtr donor = GenerateLineitem({.rows = 2000, .zipf_theta = 1.0,
                                     .seed = 700 + seed});

  const int num_batches = 3 + static_cast<int>(rng.Uniform(3));  // 3..5
  std::vector<std::vector<std::vector<Value>>> batches;
  for (int b = 0; b < num_batches; ++b) {
    batches.push_back(SampleRows(&rng, *donor, 20 + rng.Uniform(120)));
  }
  const int crash_at = 1 + static_cast<int>(rng.Uniform(num_batches));
  const int checkpoint_at = static_cast<int>(rng.Uniform(crash_at));

  const std::vector<std::string> specs = {
      "SINGLE(l_returnflag, l_linestatus)",
      "PAIRS(l_returnflag, l_shipmode, l_linestatus)"};

  // Reference: the whole schedule on an undisturbed non-durable server.
  std::vector<ExecutionResult> ref_results;
  uint64_t ref_version = 0;
  {
    ServerOptions options;
    options.pool_size = 2;
    options.session.parallelism = workers;
    Server reference(base, options);
    for (const auto& rows : batches) {
      ASSERT_TRUE(reference.AppendBatch(rows).ok());
    }
    for (const std::string& spec : specs) {
      auto r = reference.Execute(spec);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ref_results.push_back(*std::move(r));
    }
    ref_version = reference.base_version();
  }

  // Crashy path: apply a prefix, checkpoint somewhere inside it, die at the
  // injected fault, recover, finish the schedule.
  int applied = 0;
  {
    Server victim(base, DurableOptions(dir.path(), workers));
    ASSERT_TRUE(victim.recovery_status().ok());
    for (; applied < crash_at; ++applied) {
      ASSERT_TRUE(victim.AppendBatch(batches[applied]).ok());
      if (applied == checkpoint_at) ASSERT_TRUE(victim.Checkpoint().ok());
    }
    if (mode == CrashMode::kTornWalAppend && applied < num_batches) {
      FaultInjector inj(seed);
      inj.ArmOneShot(FaultSite::kDiskTornWrite, 0);
      ScopedFaultInjection scoped(&inj);
      EXPECT_FALSE(victim.AppendBatch(batches[applied]).ok());
      EXPECT_EQ(victim.base_version(), static_cast<uint64_t>(applied));
    } else if (mode == CrashMode::kCheckpointFailure) {
      FaultInjector inj(seed);
      inj.ArmProbability(FaultSite::kDiskFsync, 1.0);
      ScopedFaultInjection scoped(&inj);
      EXPECT_FALSE(victim.Checkpoint().ok());
      EXPECT_EQ(victim.base_version(), static_cast<uint64_t>(applied));
    }
    // Destruction without clean shutdown: the "kill". Everything durable is
    // already on disk under fsync_mode=kBatch.
  }

  if (mode == CrashMode::kAbandonedRecovery) {
    // The first recovery attempt reads flipped bits everywhere and must
    // refuse to admit anything; abandoning it loses no durable state.
    FaultInjector inj(seed);
    inj.ArmProbability(FaultSite::kDiskBitFlip, 1.0);
    ScopedFaultInjection scoped(&inj);
    Server abandoned(base, DurableOptions(dir.path(), workers));
    EXPECT_FALSE(abandoned.recovery_status().ok());
  }

  Server recovered(base, DurableOptions(dir.path(), workers));
  ASSERT_TRUE(recovered.recovery_status().ok())
      << recovered.recovery_status().ToString();
  ASSERT_EQ(recovered.base_version(), static_cast<uint64_t>(applied));
  for (; applied < num_batches; ++applied) {
    ASSERT_TRUE(recovered.AppendBatch(batches[applied]).ok());
  }
  EXPECT_EQ(recovered.base_version(), ref_version);

  for (size_t i = 0; i < specs.size(); ++i) {
    auto r = recovered.Execute(specs[i]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameResults(ref_results[i], *r);
  }
}

// 6 seeds x 3 crash modes x 3 worker counts = 54 kill-and-recover trials.
class KillRecoverDifferential
    : public ::testing::TestWithParam<std::tuple<CrashMode, int>> {};

TEST_P(KillRecoverDifferential, RecoveredStateMatchesUndisturbedRun) {
  const auto [mode, workers] = GetParam();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RunKillRecoverTrial(seed, mode, workers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashModesAllWorkerCounts, KillRecoverDifferential,
    ::testing::Combine(::testing::Values(CrashMode::kTornWalAppend,
                                         CrashMode::kCheckpointFailure,
                                         CrashMode::kAbandonedRecovery),
                       ::testing::Values(1, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<CrashMode, int>>& info) {
      return std::string(CrashModeName(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gbmqo
