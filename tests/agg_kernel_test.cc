// Aggregation-kernel selection and cross-kernel equivalence tests.
//
// PlanAggKernel's ladder (dense -> packed -> multi-word) is exercised
// directly on hand-built code domains, including the boundaries: domains
// exactly filling 64 packed bits, domains one NULL bit past 64, and
// dictionary codes straddling a bit-width step. The executor-level tests
// force each kernel through QueryExecutor::set_forced_kernel and require
// row-identical results and thread-count-identical counters.
#include "exec/agg_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/query_executor.h"

namespace gbmqo {
namespace {

constexpr AggKernel kAllKernels[] = {AggKernel::kDenseArray,
                                     AggKernel::kPackedKey,
                                     AggKernel::kMultiWord,
                                     AggKernel::kSortRuns};

/// One-int64-column table holding exactly `vals` (nullable so tests can mix
/// in NULL rows via Value(Null{})).
TablePtr IntTable(const std::vector<Value>& vals) {
  TableBuilder b(Schema({{"g", DataType::kInt64, true}}));
  for (const Value& v : vals) EXPECT_TRUE(b.AppendRow({v}).ok());
  return *b.Build("t");
}

/// Order-independent canonical form of a result table: every row rendered
/// through Value::ToString, sorted.
std::vector<std::string> Canon(const Table& t) {
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string s;
    for (int c = 0; c < t.schema().num_columns(); ++c) {
      s += t.column(c).ValueAt(r).ToString();
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Runs `query` with the given forced kernel and returns (canonical rows,
/// counters). `parallelism` defaults to 1.
struct ForcedRun {
  std::vector<std::string> rows;
  WorkCounters counters;
};
ForcedRun RunForced(const Table& t, const GroupByQuery& q, AggKernel kernel,
                    int parallelism = 1, bool force_scalar = false) {
  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, parallelism);
  exec.set_forced_kernel(kernel);
  exec.set_force_scalar(force_scalar);
  auto r = exec.ExecuteGroupBy(t, q, "out", AggStrategy::kHash);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  ForcedRun out;
  if (r.ok()) out.rows = Canon(**r);
  out.counters = ctx.counters();
  return out;
}

TEST(PlanAggKernelTest, SmallDomainPicksDense) {
  TableBuilder b(Schema({{"g", DataType::kInt64, false}}));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(b.AppendRow({Value(static_cast<int64_t>(i % 100))}).ok());
  }
  TablePtr t = *b.Build("t");
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0});
  EXPECT_EQ(plan.kernel, AggKernel::kDenseArray);
  ASSERT_EQ(plan.cols.size(), 1u);
  EXPECT_EQ(plan.cols[0].radix, 100u);  // range 99 + 1, no NULL slot
  // Capacity is the power-of-two padding of the slot product, floored at 64
  // so the 16-way merge partitioning always has whole slots per partition.
  EXPECT_EQ(plan.dense_capacity, 128u);
}

TEST(PlanAggKernelTest, WideDomainFallsToPacked) {
  TablePtr t = IntTable({Value(int64_t{0}), Value(int64_t{1} << 30)});
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0});
  EXPECT_EQ(plan.kernel, AggKernel::kPackedKey);
  // NULL bits are allocated for columns that *contain* NULLs, not for every
  // schema-nullable column — this one has none.
  EXPECT_EQ(plan.total_bits, 31);
  EXPECT_EQ(plan.key_width, 1);

  TablePtr tn = IntTable(
      {Value(int64_t{0}), Value(int64_t{1} << 30), Value(Null{})});
  const AggKernelPlan plan_n = PlanAggKernel(*tn, ColumnSet{0});
  EXPECT_EQ(plan_n.kernel, AggKernel::kPackedKey);
  EXPECT_EQ(plan_n.total_bits, 31 + 1);  // 31 value bits + 1 NULL bit
}

TEST(PlanAggKernelTest, SixtyFourValueBitsStillPack) {
  // Two non-nullable columns of exactly 32 code bits each: 64 bits total,
  // the last packable width.
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false}}));
  const int64_t top = (int64_t{1} << 32) - 1;  // range 2^32-1 -> 32 bits
  ASSERT_TRUE(b.AppendRow({Value(int64_t{0}), Value(int64_t{0})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(top), Value(top)}).ok());
  TablePtr t = *b.Build("t");
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0, 1});
  EXPECT_EQ(plan.kernel, AggKernel::kPackedKey);
  EXPECT_EQ(plan.total_bits, 64);
}

TEST(PlanAggKernelTest, OneNullBitPastSixtyFourFallsToMultiWord) {
  // Same 32+32 value bits, but one column is nullable: its NULL flag is the
  // 65th bit, so the domain just overflows a single word.
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, true}}));
  const int64_t top = (int64_t{1} << 32) - 1;
  ASSERT_TRUE(b.AppendRow({Value(int64_t{0}), Value(int64_t{0})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(top), Value(top)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(top), Value(Null{})}).ok());
  TablePtr t = *b.Build("t");
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0, 1});
  EXPECT_EQ(plan.kernel, AggKernel::kMultiWord);
  EXPECT_TRUE(plan.track_nulls);
  EXPECT_EQ(plan.key_width, 3);  // 2 code words + null-mask word

  // The executor really runs it multi-word even when dense is preferred.
  GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  const ForcedRun run = RunForced(*t, q, AggKernel::kDenseArray);
  EXPECT_EQ(run.counters.multiword_kernel_rows, 3u);
  EXPECT_EQ(run.counters.dense_kernel_rows, 0u);
  EXPECT_EQ(run.rows.size(), 3u);
}

TEST(PlanAggKernelTest, ForcedKernelStartsLadderLower) {
  TablePtr t = IntTable({Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_EQ(PlanAggKernel(*t, ColumnSet{0}).kernel, AggKernel::kDenseArray);
  EXPECT_EQ(PlanAggKernel(*t, ColumnSet{0}, AggKernel::kPackedKey).kernel,
            AggKernel::kPackedKey);
  EXPECT_EQ(PlanAggKernel(*t, ColumnSet{0}, AggKernel::kMultiWord).kernel,
            AggKernel::kMultiWord);
}

TEST(PlanAggKernelTest, SortCrossoverPicksSortRunsPastThreshold) {
  // One 21-bit column (dense ineligible: 2^20+1 slots is past the dense
  // budget) with one more distinct row than kSortCrossoverGroups: the
  // estimated group count min(rows, 2^21) crosses the threshold, so the
  // auto ladder picks the sort-runs kernel. Forcing kPackedKey pins the
  // hash side of the crossover; forcing kSortRuns pins the sort side on any
  // packed-eligible input regardless of size.
  TableBuilder b(Schema({{"g", DataType::kInt64, false}}));
  const size_t rows = kSortCrossoverGroups + 1;
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(b.AppendRow({Value(static_cast<int64_t>(i))}).ok());
  }
  TablePtr t = *b.Build("t");
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0});
  EXPECT_EQ(plan.kernel, AggKernel::kSortRuns);
  EXPECT_EQ(plan.total_bits, 21);
  EXPECT_EQ(plan.key_width, 1);
  EXPECT_EQ(PlanAggKernel(*t, ColumnSet{0}, AggKernel::kPackedKey).kernel,
            AggKernel::kPackedKey);

  TablePtr small = IntTable({Value(int64_t{0}), Value(int64_t{1} << 20)});
  EXPECT_EQ(PlanAggKernel(*small, ColumnSet{0}).kernel, AggKernel::kPackedKey);
  EXPECT_EQ(PlanAggKernel(*small, ColumnSet{0}, AggKernel::kSortRuns).kernel,
            AggKernel::kSortRuns);
}

TEST(PlanAggKernelTest, ForcedSortRunsFallsToMultiWordWhenUnpackable) {
  // kSortRuns shares packed eligibility; a domain past 64 bits falls down
  // the ladder to the general kernel like any other forced preference.
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, true}}));
  const int64_t top = (int64_t{1} << 32) - 1;
  ASSERT_TRUE(b.AppendRow({Value(int64_t{0}), Value(int64_t{0})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(top), Value(top)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(top), Value(Null{})}).ok());
  TablePtr t = *b.Build("t");
  EXPECT_EQ(PlanAggKernel(*t, ColumnSet{0, 1}, AggKernel::kSortRuns).kernel,
            AggKernel::kMultiWord);
}

TEST(PlanAggKernelTest, FourSixteenBitColumnsPackNotDense) {
  // Each column's radix (2^16) is under the dense budget but the product
  // is far over it; the 64 summed bits still fit one packed word.
  TableBuilder b(Schema({{"a", DataType::kInt64, false},
                         {"b", DataType::kInt64, false},
                         {"c", DataType::kInt64, false},
                         {"d", DataType::kInt64, false}}));
  const int64_t top = 0xFFFF;
  ASSERT_TRUE(b.AppendRow({Value(int64_t{0}), Value(int64_t{0}),
                           Value(int64_t{0}), Value(int64_t{0})})
                  .ok());
  ASSERT_TRUE(b.AppendRow({Value(top), Value(top), Value(top), Value(top)}).ok());
  TablePtr t = *b.Build("t");
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0, 1, 2, 3});
  EXPECT_EQ(plan.kernel, AggKernel::kPackedKey);
  EXPECT_EQ(plan.total_bits, 64);
}

TEST(AggKernelNullTest, NullIsNotZeroAndNotMin) {
  // NULL must fold into its own group under every kernel: distinct from the
  // placeholder value 0 and from the domain minimum (offset code 0).
  TablePtr t = IntTable({Value(int64_t{5}), Value(int64_t{5}), Value(Null{}),
                         Value(int64_t{0}), Value(Null{})});
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar("cnt")}};
  for (AggKernel k : kAllKernels) {
    SCOPED_TRACE(AggKernelName(k));
    const ForcedRun run = RunForced(*t, q, k);
    EXPECT_EQ(run.rows.size(), 3u);  // groups: 5, 0, NULL
  }
}

TEST(AggKernelNullTest, NullStringDistinctFromEmptyString) {
  // The NULL placeholder interns "" — the kernels must still keep a real
  // empty string and NULL in separate groups via the NULL bit/slot.
  TableBuilder b(Schema({{"s", DataType::kString, true}}));
  ASSERT_TRUE(b.AppendRow({Value("")}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{})}).ok());
  ASSERT_TRUE(b.AppendRow({Value("a")}).ok());
  ASSERT_TRUE(b.AppendRow({Value("")}).ok());
  TablePtr t = *b.Build("t");
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar("cnt")}};
  std::vector<std::string> reference;
  for (AggKernel k : kAllKernels) {
    SCOPED_TRACE(AggKernelName(k));
    const ForcedRun run = RunForced(*t, q, k);
    EXPECT_EQ(run.rows.size(), 3u);  // groups: "", NULL, "a"
    if (reference.empty()) {
      reference = run.rows;
    } else {
      EXPECT_EQ(run.rows, reference);
    }
  }
}

TEST(AggKernelDictTest, DictCodesAtBitWidthBoundary) {
  // 257 distinct strings: codes 0..256, one past the 8-bit boundary, so the
  // packed field must be 9 bits wide and the two extreme codes must not
  // alias. Every kernel has to report exactly 257 groups.
  TableBuilder b(Schema({{"s", DataType::kString, false}}));
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 257; ++i) {
      ASSERT_TRUE(b.AppendRow({Value("k" + std::to_string(i))}).ok());
    }
  }
  TablePtr t = *b.Build("t");
  const AggKernelPlan plan = PlanAggKernel(*t, ColumnSet{0},
                                           AggKernel::kPackedKey);
  EXPECT_EQ(plan.kernel, AggKernel::kPackedKey);
  EXPECT_EQ(plan.total_bits, 9);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar("cnt")}};
  for (AggKernel k : kAllKernels) {
    SCOPED_TRACE(AggKernelName(k));
    EXPECT_EQ(RunForced(*t, q, k).rows.size(), 257u);
  }
}

TablePtr MixedTable(int rows, uint64_t seed) {
  TableBuilder b(Schema({{"g1", DataType::kInt64, true},
                         {"g2", DataType::kString, true},
                         {"v", DataType::kDouble, false},
                         {"w", DataType::kInt64, false}}));
  Rng rng(seed);
  const char* names[] = {"red", "green", "blue", ""};
  for (int i = 0; i < rows; ++i) {
    Value g1 = rng.Bernoulli(0.1)
                   ? Value(Null{})
                   : Value(static_cast<int64_t>(rng.Uniform(40)));
    Value g2 = rng.Bernoulli(0.1) ? Value(Null{}) : Value(names[rng.Uniform(4)]);
    EXPECT_TRUE(b.AppendRow({g1, g2,
                             Value(static_cast<double>(rng.Uniform(64)) / 4.0),
                             Value(static_cast<int64_t>(rng.Uniform(1000)))})
                    .ok());
  }
  return *b.Build("mixed");
}

TEST(AggKernelEquivalenceTest, AllKernelsProduceIdenticalResults) {
  TablePtr t = MixedTable(5000, 77);
  const std::vector<GroupByQuery> queries = {
      {ColumnSet{0}, {AggregateSpec::CountStar("cnt")}},
      {ColumnSet{0, 1},
       {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(3, "s"),
        AggregateSpec::Min(2, "mn"), AggregateSpec::Max(2, "mx")}},
      {ColumnSet{1, 2}, {AggregateSpec::CountStar("cnt")}},
  };
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE("query " + std::to_string(qi));
    std::vector<std::string> reference;
    for (AggKernel k : kAllKernels) {
      SCOPED_TRACE(AggKernelName(k));
      const ForcedRun run = RunForced(*t, queries[qi], k);
      if (reference.empty()) {
        reference = run.rows;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(run.rows, reference);
      }
    }
  }
}

TEST(AggKernelEquivalenceTest, ForcedKernelChargesItsOwnCounter) {
  TablePtr t = MixedTable(2000, 5);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  const ForcedRun dense = RunForced(*t, q, AggKernel::kDenseArray);
  EXPECT_EQ(dense.counters.dense_kernel_rows, 2000u);
  EXPECT_EQ(dense.counters.hash_probes, 0u);  // dense: no hashing at all
  const ForcedRun packed = RunForced(*t, q, AggKernel::kPackedKey);
  EXPECT_EQ(packed.counters.packed_kernel_rows, 2000u);
  EXPECT_GT(packed.counters.hash_probes, 0u);
  const ForcedRun multi = RunForced(*t, q, AggKernel::kMultiWord);
  EXPECT_EQ(multi.counters.multiword_kernel_rows, 2000u);
  EXPECT_GT(multi.counters.hash_probes, 0u);
  const ForcedRun sorted = RunForced(*t, q, AggKernel::kSortRuns);
  EXPECT_EQ(sorted.counters.sort_kernel_rows, 2000u);
  // The sort-runs fold never probes (distinct keys are appended in sorted
  // order); on this single-shard input there is no partitioned merge
  // either, so the kernel charges zero hash probes.
  EXPECT_EQ(sorted.counters.hash_probes, 0u);
  // Same results regardless of kernel.
  EXPECT_EQ(dense.rows, packed.rows);
  EXPECT_EQ(dense.rows, multi.rows);
  EXPECT_EQ(dense.rows, sorted.rows);
}

void ExpectIdenticalAcrossThreads(const Table& t, const GroupByQuery& q,
                                  AggKernel kernel) {
  SCOPED_TRACE(AggKernelName(kernel));
  const ForcedRun serial = RunForced(t, q, kernel, /*parallelism=*/1);
  const ForcedRun parallel = RunForced(t, q, kernel, /*parallelism=*/4);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(serial.counters.hash_probes, parallel.counters.hash_probes);
  EXPECT_EQ(serial.counters.agg_cpu_units, parallel.counters.agg_cpu_units);
  EXPECT_EQ(serial.counters.rows_emitted, parallel.counters.rows_emitted);
  EXPECT_EQ(serial.counters.dense_kernel_rows,
            parallel.counters.dense_kernel_rows);
  EXPECT_EQ(serial.counters.packed_kernel_rows,
            parallel.counters.packed_kernel_rows);
  EXPECT_EQ(serial.counters.multiword_kernel_rows,
            parallel.counters.multiword_kernel_rows);
}

TEST(AggKernelParallelTest, MultiMorselCountersThreadCountInvariant) {
  // 100k rows: two morsels, so parallel runs take the real multi-shard
  // build + partitioned-merge path in every kernel.
  TablePtr t = MixedTable(100000, 9);
  GroupByQuery q{ColumnSet{0, 1},
                 {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(3, "s")}};
  for (AggKernel k : kAllKernels) ExpectIdenticalAcrossThreads(*t, q, k);
}

TEST(AggKernelSimdTest, ScalarTierBitIdenticalEveryKernel) {
  // The vectorized hot loops (key formation, tagged probe, columnar
  // accumulate — exec/simd.h) must reproduce the scalar tier exactly:
  // same rows, same counters, per kernel, across the
  // force_scalar x parallelism {1, 4, 8} matrix. Multi-morsel input so the
  // vectorized DenseGroupTable::MergeFrom partition filter runs too.
  TablePtr t = MixedTable(100000, 21);
  GroupByQuery q{ColumnSet{0, 1},
                 {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(3, "s"),
                  AggregateSpec::Min(2, "mn"), AggregateSpec::Max(2, "mx")}};
  for (AggKernel k : kAllKernels) {
    SCOPED_TRACE(AggKernelName(k));
    const ForcedRun simd = RunForced(*t, q, k, 1);
    for (int par : {1, 4, 8}) {
      SCOPED_TRACE("par=" + std::to_string(par));
      const ForcedRun scalar =
          RunForced(*t, q, k, par, /*force_scalar=*/true);
      EXPECT_EQ(simd.rows, scalar.rows);
      EXPECT_EQ(simd.counters.hash_probes, scalar.counters.hash_probes);
      EXPECT_EQ(simd.counters.agg_cpu_units, scalar.counters.agg_cpu_units);
      EXPECT_EQ(simd.counters.rows_emitted, scalar.counters.rows_emitted);
      EXPECT_EQ(simd.counters.dense_kernel_rows,
                scalar.counters.dense_kernel_rows);
      EXPECT_EQ(simd.counters.packed_kernel_rows,
                scalar.counters.packed_kernel_rows);
      EXPECT_EQ(simd.counters.multiword_kernel_rows,
                scalar.counters.multiword_kernel_rows);
    }
  }
}

TEST(AggKernelSimdTest, DoubleSumOrderPreservedAcrossTiers) {
  // SUM over doubles is the order-sensitive aggregate: the columnar
  // accumulate keeps the blocked scalar fold order, so even sums that are
  // not exactly representable must match *bit for bit* across tiers —
  // compared on the raw doubles, not a rounded rendering.
  TableBuilder b(Schema({{"g", DataType::kInt64, false},
                         {"v", DataType::kDouble, false}}));
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(
        b.AppendRow({Value(static_cast<int64_t>(rng.Uniform(8))),
                     Value(0.1 * static_cast<double>(rng.Uniform(1000)) -
                           31.7)})
            .ok());
  }
  TablePtr t = *b.Build("t");
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::Sum(1, "s")}};
  for (AggKernel k : kAllKernels) {
    SCOPED_TRACE(AggKernelName(k));
    auto run = [&](bool force_scalar) {
      ExecContext ctx;
      QueryExecutor exec(&ctx, ScanMode::kColumnar, 1);
      exec.set_forced_kernel(k);
      exec.set_force_scalar(force_scalar);
      auto r = exec.ExecuteGroupBy(*t, q, "out", AggStrategy::kHash);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      return *r;
    };
    const TablePtr simd = run(false);
    const TablePtr scalar = run(true);
    ASSERT_EQ(simd->num_rows(), scalar->num_rows());
    for (size_t r = 0; r < simd->num_rows(); ++r) {
      EXPECT_EQ(simd->column(0).Int64At(r), scalar->column(0).Int64At(r));
      const double a = simd->column(1).DoubleAt(r);
      const double bsum = scalar->column(1).DoubleAt(r);
      uint64_t abits, bbits;
      std::memcpy(&abits, &a, sizeof(abits));
      std::memcpy(&bbits, &bsum, sizeof(bbits));
      EXPECT_EQ(abits, bbits) << "group row " << r;
    }
  }
}

}  // namespace
}  // namespace gbmqo
