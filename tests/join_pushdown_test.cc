#include "core/join_pushdown.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gbmqo {
namespace {

/// R(a, b, c, x) with a = join key; S(a, s) dimension.
struct Fixture {
  Fixture() {
    TableBuilder rb(Schema({{"a", DataType::kInt64, false},
                            {"b", DataType::kInt64, false},
                            {"c", DataType::kString, false},
                            {"x", DataType::kInt64, false}}));
    Rng rng(13);
    const char* colors[] = {"red", "green", "blue"};
    for (int i = 0; i < 5000; ++i) {
      const int64_t a = static_cast<int64_t>(rng.Uniform(40));
      EXPECT_TRUE(rb.AppendRow({Value(a),
                                Value(static_cast<int64_t>(rng.Uniform(6))),
                                Value(colors[rng.Uniform(3)]),
                                Value(static_cast<int64_t>(rng.Uniform(100)))})
                      .ok());
    }
    left = *rb.Build("r");

    TableBuilder sb(Schema({{"a", DataType::kInt64, false},
                            {"s", DataType::kInt64, false}}));
    for (int a = 0; a < 40; ++a) {
      // 1-3 matching dimension rows per key; keys 35+ are absent (some R
      // rows drop out of the join).
      if (a >= 35) continue;
      const int copies = 1 + a % 3;
      for (int k = 0; k < copies; ++k) {
        EXPECT_TRUE(sb.AppendRow({Value(a), Value(a * 100 + k)}).ok());
      }
    }
    right = *sb.Build("s");

    EXPECT_TRUE(catalog.RegisterBase(left).ok());
    EXPECT_TRUE(catalog.RegisterBase(right).ok());
  }

  TablePtr left, right;
  Catalog catalog;
};

JoinGroupingSetsQuery BasicQuery() {
  JoinGroupingSetsQuery q;
  q.left_table = "r";
  q.right_table = "s";
  q.left_join_col = 0;
  q.right_join_col = 0;
  q.requests = {GroupByRequest::Count({1}),          // (b)
                GroupByRequest::Count({2}),          // (c)
                GroupByRequest::Count({1, 2})};      // (b, c)
  return q;
}

std::map<std::string, double> Keyed(const Table& t, int ngroup, int agg_col) {
  std::map<std::string, double> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < ngroup; ++c) {
      key += t.column(c).ValueAt(row).ToString() + "|";
    }
    out[key] = t.column(agg_col).NumericAt(row);
  }
  return out;
}

void ExpectSame(const JoinExecutionResult& a, const JoinExecutionResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [cols, ta] : a.results) {
    auto it = b.results.find(cols);
    ASSERT_TRUE(it != b.results.end());
    const int ng = cols.size();
    auto ka = Keyed(*ta, ng, ng);
    auto kb = Keyed(*it->second, ng, ng);
    ASSERT_EQ(ka.size(), kb.size()) << cols.ToString();
    for (const auto& [key, v] : ka) {
      ASSERT_TRUE(kb.count(key)) << cols.ToString() << " " << key;
      EXPECT_NEAR(v, kb[key], 1e-9) << cols.ToString() << " " << key;
    }
  }
}

TEST(JoinPushdownTest, PushdownMatchesJoinFirst) {
  Fixture f;
  JoinGroupingSetsExecutor exec(&f.catalog);
  auto base = exec.ExecuteJoinFirst(BasicQuery());
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto naive_push = exec.ExecutePushdown(BasicQuery(), PushdownMode::kNaive);
  ASSERT_TRUE(naive_push.ok()) << naive_push.status().ToString();
  auto gbmqo_push = exec.ExecutePushdown(BasicQuery(), PushdownMode::kGbMqo);
  ASSERT_TRUE(gbmqo_push.ok()) << gbmqo_push.status().ToString();
  ExpectSame(*base, *naive_push);
  ExpectSame(*base, *gbmqo_push);
}

TEST(JoinPushdownTest, PushdownJoinsFewerRows) {
  Fixture f;
  JoinGroupingSetsExecutor exec(&f.catalog);
  auto base = exec.ExecuteJoinFirst(BasicQuery());
  auto push = exec.ExecutePushdown(BasicQuery(), PushdownMode::kGbMqo);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(push.ok());
  // The pushed plan aggregates before joining: far fewer rows flow through
  // the join and the final group-bys.
  EXPECT_LT(push->counters.rows_emitted, base->counters.rows_emitted);
}

TEST(JoinPushdownTest, SelectionsPushBelow) {
  Fixture f;
  JoinGroupingSetsQuery q = BasicQuery();
  q.left_filter.And({3, CompareOp::kLt, Value(50)});        // x < 50
  q.right_filter.And({1, CompareOp::kGe, Value(100)});      // s >= 100
  JoinGroupingSetsExecutor exec(&f.catalog);
  auto base = exec.ExecuteJoinFirst(q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto push = exec.ExecutePushdown(q, PushdownMode::kGbMqo);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  ExpectSame(*base, *push);
}

TEST(JoinPushdownTest, MultiAggregates) {
  Fixture f;
  JoinGroupingSetsQuery q = BasicQuery();
  q.requests = {
      {ColumnSet{1}, {AggRequest{}, AggRequest{AggKind::kSum, 3},
                      AggRequest{AggKind::kMin, 3},
                      AggRequest{AggKind::kMax, 3}}},
      {ColumnSet{2}, {AggRequest{AggKind::kSum, 3}}},
  };
  JoinGroupingSetsExecutor exec(&f.catalog);
  auto base = exec.ExecuteJoinFirst(q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto push = exec.ExecutePushdown(q, PushdownMode::kGbMqo);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  // Compare every aggregate column, not just the first.
  for (const auto& [cols, ta] : base->results) {
    const TablePtr& tb = push->results.at(cols);
    const int ng = cols.size();
    for (int agg = 0; agg < ta->schema().num_columns() - ng; ++agg) {
      auto ka = Keyed(*ta, ng, ng + agg);
      auto kb = Keyed(*tb, ng, ng + agg);
      ASSERT_EQ(ka.size(), kb.size());
      for (const auto& [key, v] : ka) {
        EXPECT_NEAR(v, kb.at(key), 1e-9) << cols.ToString() << " " << key;
      }
    }
  }
}

TEST(JoinPushdownTest, SharedPushedSetsDeduplicated) {
  // (b) and (b,a) both push to (a,b): the pushed plan computes it once.
  Fixture f;
  JoinGroupingSetsQuery q = BasicQuery();
  q.requests = {GroupByRequest::Count({1}), GroupByRequest::Count({0, 1})};
  JoinGroupingSetsExecutor exec(&f.catalog);
  auto base = exec.ExecuteJoinFirst(q);
  auto push = exec.ExecutePushdown(q, PushdownMode::kNaive);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  ExpectSame(*base, *push);
}

TEST(JoinPushdownTest, NoTempLeaks) {
  Fixture f;
  JoinGroupingSetsExecutor exec(&f.catalog);
  ASSERT_TRUE(exec.ExecutePushdown(BasicQuery(), PushdownMode::kGbMqo).ok());
  EXPECT_EQ(f.catalog.temp_bytes(), 0u);
}

TEST(JoinPushdownTest, InvalidInputsRejected) {
  Fixture f;
  JoinGroupingSetsExecutor exec(&f.catalog);
  JoinGroupingSetsQuery q = BasicQuery();
  q.left_table = "missing";
  EXPECT_FALSE(exec.ExecuteJoinFirst(q).ok());
  q = BasicQuery();
  q.right_join_col = 99;
  EXPECT_FALSE(exec.ExecutePushdown(q, PushdownMode::kNaive).ok());
  q = BasicQuery();
  q.requests.clear();
  EXPECT_FALSE(exec.ExecutePushdown(q, PushdownMode::kGbMqo).ok());
}

}  // namespace
}  // namespace gbmqo
