#include "core/grouping_sets_planner.h"

#include <gtest/gtest.h>

#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

Schema LineitemSchema() { return GenerateLineitem({.rows = 1})->schema(); }

TEST(GroupingSetsPlannerTest, ManySingleColumnsUseUnionPlan) {
  Schema schema = LineitemSchema();
  auto requests = SingleColumnRequests(LineitemAnalysisColumns());
  GroupingSetsPlanner planner;
  auto plan = planner.Plan(requests, schema);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // One sub-plan: GROUP BY union-of-all-columns, every request beneath it.
  ASSERT_EQ(plan->subplans.size(), 1u);
  const PlanNode& top = plan->subplans[0];
  EXPECT_EQ(top.columns.size(), 12);
  EXPECT_EQ(top.children.size(), requests.size());
  EXPECT_TRUE(plan->Validate(requests).ok());
}

TEST(GroupingSetsPlannerTest, ContainmentInputUsesSharedSortChains) {
  // The paper's CONT workload: three dates, three pairs.
  Schema schema = LineitemSchema();
  std::vector<GroupByRequest> requests = {
      GroupByRequest::Count({kShipdate}),
      GroupByRequest::Count({kCommitdate}),
      GroupByRequest::Count({kReceiptdate}),
      GroupByRequest::Count({kShipdate, kCommitdate}),
      GroupByRequest::Count({kShipdate, kReceiptdate}),
      GroupByRequest::Count({kCommitdate, kReceiptdate}),
  };
  GroupingSetsPlanner planner;
  auto plan = planner.Plan(requests, schema);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(requests).ok());
  // Three chains, one per two-column maximal set, each sort-hinted.
  ASSERT_EQ(plan->subplans.size(), 3u);
  for (const PlanNode& sub : plan->subplans) {
    EXPECT_EQ(sub.columns.size(), 2);
    EXPECT_TRUE(sub.required);
    EXPECT_EQ(sub.strategy_hint, AggStrategy::kSort);
    EXPECT_EQ(sub.children.size(), 1u);  // one subsumed single
  }
}

TEST(GroupingSetsPlannerTest, SingleRequestIsOneLeaf) {
  Schema schema = LineitemSchema();
  auto requests = SingleColumnRequests({kShipmode});
  GroupingSetsPlanner planner;
  auto plan = planner.Plan(requests, schema);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->subplans.size(), 1u);
  EXPECT_TRUE(plan->subplans[0].is_leaf());
  EXPECT_TRUE(plan->Validate(requests).ok());
}

TEST(GroupingSetsPlannerTest, ChainThresholdConfigurable) {
  Schema schema = LineitemSchema();
  auto requests = SingleColumnRequests({kReturnflag, kLinestatus, kShipmode,
                                        kShipinstruct});
  GroupingSetsPlannerOptions generous;
  generous.max_sort_chains = 10;
  auto plan = GroupingSetsPlanner(generous).Plan(requests, schema);
  ASSERT_TRUE(plan.ok());
  // With a generous threshold, four disjoint singles stay four chains.
  EXPECT_EQ(plan->subplans.size(), 4u);

  GroupingSetsPlannerOptions strict;
  strict.max_sort_chains = 3;
  auto plan2 = GroupingSetsPlanner(strict).Plan(requests, schema);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(plan2->subplans.size(), 1u);  // union plan
}

TEST(GroupingSetsPlannerTest, UnionPlanCarriesAggregates) {
  Schema schema = LineitemSchema();
  std::vector<GroupByRequest> requests = {
      {ColumnSet{kReturnflag}, {AggRequest{AggKind::kSum, kQuantity}}},
      GroupByRequest::Count({kLinestatus}),
      GroupByRequest::Count({kShipmode}),
      GroupByRequest::Count({kShipinstruct}),
  };
  GroupingSetsPlanner planner;
  auto plan = planner.Plan(requests, schema);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(requests).ok());
}

TEST(GroupingSetsPlannerTest, RejectsInvalidRequests) {
  Schema schema = LineitemSchema();
  GroupingSetsPlanner planner;
  EXPECT_FALSE(planner.Plan({}, schema).ok());
}

}  // namespace
}  // namespace gbmqo
