#include "core/request.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

Schema MakeSchema() {
  return Schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kInt64, false},
                 {"c", DataType::kDouble, false},
                 {"s", DataType::kString, false}});
}

TEST(RequestTest, SingleColumnRequests) {
  auto reqs = SingleColumnRequests({0, 2, 3});
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].columns, ColumnSet{0});
  EXPECT_EQ(reqs[1].columns, ColumnSet{2});
  EXPECT_EQ(reqs[2].columns, ColumnSet{3});
  // Default aggregate is COUNT(*).
  ASSERT_EQ(reqs[0].aggs.size(), 1u);
  EXPECT_EQ(reqs[0].aggs[0].kind, AggKind::kCountStar);
}

TEST(RequestTest, TwoColumnRequestsAllPairs) {
  auto reqs = TwoColumnRequests({0, 1, 2});
  ASSERT_EQ(reqs.size(), 3u);  // C(3,2)
  EXPECT_EQ(reqs[0].columns, (ColumnSet{0, 1}));
  EXPECT_EQ(reqs[1].columns, (ColumnSet{0, 2}));
  EXPECT_EQ(reqs[2].columns, (ColumnSet{1, 2}));
}

TEST(RequestTest, ValidateAccepts) {
  Schema s = MakeSchema();
  EXPECT_TRUE(ValidateRequests(SingleColumnRequests({0, 1}), s).ok());
  std::vector<GroupByRequest> reqs = {
      {ColumnSet{0}, {AggRequest{AggKind::kSum, 2}}}};
  EXPECT_TRUE(ValidateRequests(reqs, s).ok());
}

TEST(RequestTest, ValidateRejectsEmptySet) {
  Schema s = MakeSchema();
  EXPECT_FALSE(ValidateRequests({}, s).ok());
  std::vector<GroupByRequest> reqs = {{ColumnSet(), {AggRequest{}}}};
  EXPECT_FALSE(ValidateRequests(reqs, s).ok());
}

TEST(RequestTest, ValidateRejectsOutOfRange) {
  Schema s = MakeSchema();
  std::vector<GroupByRequest> reqs = {GroupByRequest::Count(ColumnSet{9})};
  EXPECT_FALSE(ValidateRequests(reqs, s).ok());
}

TEST(RequestTest, ValidateRejectsDuplicates) {
  Schema s = MakeSchema();
  std::vector<GroupByRequest> reqs = {GroupByRequest::Count(ColumnSet{0}),
                                      GroupByRequest::Count(ColumnSet{0})};
  EXPECT_FALSE(ValidateRequests(reqs, s).ok());
}

TEST(RequestTest, ValidateRejectsBadAggregates) {
  Schema s = MakeSchema();
  // COUNT(*) must not carry an argument.
  std::vector<GroupByRequest> r1 = {
      {ColumnSet{0}, {AggRequest{AggKind::kCountStar, 1}}}};
  EXPECT_FALSE(ValidateRequests(r1, s).ok());
  // SUM over string.
  std::vector<GroupByRequest> r2 = {
      {ColumnSet{0}, {AggRequest{AggKind::kSum, 3}}}};
  EXPECT_TRUE(ValidateRequests(r2, s).IsNotSupported());
  // Out-of-range argument.
  std::vector<GroupByRequest> r3 = {
      {ColumnSet{0}, {AggRequest{AggKind::kMin, 7}}}};
  EXPECT_FALSE(ValidateRequests(r3, s).ok());
  // No aggregates at all.
  std::vector<GroupByRequest> r4 = {{ColumnSet{0}, {}}};
  EXPECT_FALSE(ValidateRequests(r4, s).ok());
}

TEST(RequestTest, AggOutputNames) {
  Schema s = MakeSchema();
  EXPECT_EQ(AggOutputName(AggRequest{}, s), "cnt");
  EXPECT_EQ(AggOutputName(AggRequest{AggKind::kSum, 2}, s), "sum_c");
  EXPECT_EQ(AggOutputName(AggRequest{AggKind::kMin, 0}, s), "min_a");
  EXPECT_EQ(AggOutputName(AggRequest{AggKind::kMax, 1}, s), "max_b");
}

TEST(RequestTest, AggRequestOrdering) {
  AggRequest count{};
  AggRequest sum_a{AggKind::kSum, 0};
  AggRequest sum_b{AggKind::kSum, 1};
  EXPECT_TRUE(count < sum_a);
  EXPECT_TRUE(sum_a < sum_b);
  EXPECT_TRUE(count == AggRequest{});
}

}  // namespace
}  // namespace gbmqo
