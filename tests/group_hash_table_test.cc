#include "exec/group_hash_table.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace gbmqo {
namespace {

TEST(GroupHashTableTest, InsertAndFind) {
  GroupHashTable t(1);
  uint64_t k1 = 10, k2 = 20;
  bool inserted = false;
  EXPECT_EQ(t.FindOrInsert(&k1, &inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.FindOrInsert(&k2, &inserted), 1u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.FindOrInsert(&k1, &inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(t.size(), 2u);
}

TEST(GroupHashTableTest, KeyOfReturnsStoredKey) {
  GroupHashTable t(2);
  uint64_t key[2] = {7, 9};
  const uint32_t id = t.FindOrInsert(key);
  EXPECT_EQ(t.KeyOf(id)[0], 7u);
  EXPECT_EQ(t.KeyOf(id)[1], 9u);
}

TEST(GroupHashTableTest, WideKeysDistinguished) {
  GroupHashTable t(3);
  uint64_t a[3] = {1, 2, 3};
  uint64_t b[3] = {1, 2, 4};
  EXPECT_NE(t.FindOrInsert(a), t.FindOrInsert(b));
}

TEST(GroupHashTableTest, GrowPreservesMappings) {
  GroupHashTable t(1, 16);
  std::unordered_map<uint64_t, uint32_t> reference;
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.Uniform(3000);
    const uint32_t id = t.FindOrInsert(&k);
    auto it = reference.find(k);
    if (it == reference.end()) {
      reference.emplace(k, id);
    } else {
      EXPECT_EQ(it->second, id) << "key " << k;
    }
  }
  EXPECT_EQ(t.size(), reference.size());
}

TEST(GroupHashTableTest, DenseIdsInInsertionOrder) {
  GroupHashTable t(1);
  for (uint64_t k = 100; k < 200; ++k) {
    EXPECT_EQ(t.FindOrInsert(&k), static_cast<uint32_t>(k - 100));
  }
}

TEST(GroupHashTableTest, ZeroKeyIsValid) {
  GroupHashTable t(2);
  uint64_t zero[2] = {0, 0};
  const uint32_t id = t.FindOrInsert(zero);
  bool inserted = true;
  EXPECT_EQ(t.FindOrInsert(zero, &inserted), id);
  EXPECT_FALSE(inserted);
}

TEST(GroupHashTableTest, ProbeCounterAdvances) {
  GroupHashTable t(1);
  uint64_t k = 1;
  t.FindOrInsert(&k);
  EXPECT_GE(t.probes(), 1u);
}

// RAII guard restoring the default group-id limit even if the test fails.
struct ScopedMaxGroups {
  explicit ScopedMaxGroups(size_t limit) {
    GroupHashTable::OverrideMaxGroupsForTest(limit);
  }
  ~ScopedMaxGroups() { GroupHashTable::OverrideMaxGroupsForTest(0); }
};

TEST(GroupHashTableTest, GroupIdSpaceGuardThrows) {
  ScopedMaxGroups cap(2);
  GroupHashTable t(1);
  uint64_t k1 = 1, k2 = 2, k3 = 3;
  EXPECT_EQ(t.FindOrInsert(&k1), 0u);
  EXPECT_EQ(t.FindOrInsert(&k2), 1u);
  // Existing groups stay findable at the limit; only a *new* group throws.
  bool inserted = true;
  EXPECT_EQ(t.FindOrInsert(&k1, &inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_THROW(t.FindOrInsert(&k3), GroupIdSpaceExhausted);
  EXPECT_EQ(t.size(), 2u);
}

TEST(GroupHashTableTest, DenseGroupIdSpaceGuardThrows) {
  ScopedMaxGroups cap(2);
  DenseGroupTable t(0, 16);
  EXPECT_EQ(t.FindOrInsert(3), 0u);
  EXPECT_EQ(t.FindOrInsert(7), 1u);
  EXPECT_EQ(t.FindOrInsert(3), 0u);  // repeat lookup is fine at the limit
  EXPECT_THROW(t.FindOrInsert(9), GroupIdSpaceExhausted);
  EXPECT_EQ(t.size(), 2u);
}

TEST(GroupHashTableTest, OverrideZeroRestoresDefaultLimit) {
  GroupHashTable::OverrideMaxGroupsForTest(0);
  EXPECT_EQ(GroupHashTable::max_groups(), GroupHashTable::kMaxGroups);
}

class KeyWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(KeyWidthTest, ManyRandomKeysRoundTrip) {
  const int width = GetParam();
  GroupHashTable t(width);
  Rng rng(static_cast<uint64_t>(width));
  std::vector<std::vector<uint64_t>> keys;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint64_t> k(static_cast<size_t>(width));
    for (auto& w : k) w = rng.Uniform(50);
    keys.push_back(k);
  }
  std::vector<uint32_t> ids;
  for (auto& k : keys) ids.push_back(t.FindOrInsert(k.data()));
  // Re-looking up yields identical ids.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(t.FindOrInsert(keys[i].data()), ids[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KeyWidthTest, ::testing::Values(1, 2, 3, 5, 8));

// ---- SIMD probe-tier parity -------------------------------------------------
//
// The tagged (Swiss-table style) probe and the scalar slot-by-slot probe
// must be observationally identical: same dense ids in the same order, same
// size, and the same probes() counter — the tag scan only skips slots that
// the scalar walk would have rejected anyway (see exec/simd.h and
// GroupHashTable's determinism contract).

TEST(GroupHashTableSimdTest, TaggedProbeMatchesScalarIdsAndProbes) {
  if (DetectedSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector tier on this host";
  }
  for (int width : {1, 2, 3}) {
    SCOPED_TRACE("width=" + std::to_string(width));
    GroupHashTable tagged(width, 16, DetectedSimdLevel());
    GroupHashTable scalar(width, 16, SimdLevel::kScalar);
    Rng rng(42 + static_cast<uint64_t>(width));
    std::vector<uint64_t> k(static_cast<size_t>(width));
    for (int i = 0; i < 20000; ++i) {
      for (auto& w : k) w = rng.Uniform(4000);
      bool ia = false, ib = false;
      const uint32_t id_a = tagged.FindOrInsert(k.data(), &ia);
      const uint32_t id_b = scalar.FindOrInsert(k.data(), &ib);
      EXPECT_EQ(id_a, id_b);
      EXPECT_EQ(ia, ib);
    }
    EXPECT_EQ(tagged.size(), scalar.size());
    EXPECT_EQ(tagged.probes(), scalar.probes());
  }
}

TEST(GroupHashTableSimdTest, MergeFromParityAcrossTiers) {
  if (DetectedSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector tier on this host";
  }
  // Build one source per tier with identical content, merge each into a
  // per-tier destination partition by partition: mappings must agree.
  GroupHashTable src_tagged(2, 16, DetectedSimdLevel());
  GroupHashTable src_scalar(2, 16, SimdLevel::kScalar);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k[2] = {rng.Uniform(900), rng.Uniform(11)};
    ASSERT_EQ(src_tagged.FindOrInsert(k), src_scalar.FindOrInsert(k));
  }
  for (int parts : {1, 4, 16}) {
    SCOPED_TRACE("parts=" + std::to_string(parts));
    GroupHashTable dst_tagged(2, 16, DetectedSimdLevel());
    GroupHashTable dst_scalar(2, 16, SimdLevel::kScalar);
    std::vector<std::pair<uint32_t, uint32_t>> map_tagged, map_scalar;
    size_t taken_tagged = 0, taken_scalar = 0;
    for (int p = 0; p < parts; ++p) {
      taken_tagged += dst_tagged.MergeFrom(src_tagged, parts, p, &map_tagged);
      taken_scalar += dst_scalar.MergeFrom(src_scalar, parts, p, &map_scalar);
    }
    EXPECT_EQ(taken_tagged, src_tagged.size());
    EXPECT_EQ(map_tagged, map_scalar);
    EXPECT_EQ(dst_tagged.size(), dst_scalar.size());
    EXPECT_EQ(dst_tagged.probes(), dst_scalar.probes());
  }
}

TEST(DenseGroupTableSimdTest, VectorPartitionScanMatchesScalar) {
  if (DetectedSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector tier on this host";
  }
  constexpr uint64_t kCapacity = 1024;
  DenseGroupTable src_v(0, kCapacity, DetectedSimdLevel());
  DenseGroupTable src_s(0, kCapacity, SimdLevel::kScalar);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t slot = static_cast<uint32_t>(rng.Uniform(kCapacity));
    ASSERT_EQ(src_v.FindOrInsert(slot), src_s.FindOrInsert(slot));
  }
  for (int parts : {1, 4, 16}) {
    SCOPED_TRACE("parts=" + std::to_string(parts));
    std::vector<std::pair<uint32_t, uint32_t>> map_v, map_s;
    size_t taken_v = 0, taken_s = 0;
    for (int p = 0; p < parts; ++p) {
      const uint64_t range = kCapacity / static_cast<uint64_t>(parts);
      DenseGroupTable dst_v(range * static_cast<uint64_t>(p),
                            range * static_cast<uint64_t>(p + 1),
                            DetectedSimdLevel());
      DenseGroupTable dst_s(range * static_cast<uint64_t>(p),
                            range * static_cast<uint64_t>(p + 1),
                            SimdLevel::kScalar);
      taken_v += dst_v.MergeFrom(src_v, parts, p, kCapacity, &map_v);
      taken_s += dst_s.MergeFrom(src_s, parts, p, kCapacity, &map_s);
    }
    EXPECT_EQ(taken_v, src_v.size());
    EXPECT_EQ(taken_s, src_s.size());
    EXPECT_EQ(map_v, map_s);
  }
}

}  // namespace
}  // namespace gbmqo
