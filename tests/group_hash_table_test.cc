#include "exec/group_hash_table.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace gbmqo {
namespace {

TEST(GroupHashTableTest, InsertAndFind) {
  GroupHashTable t(1);
  uint64_t k1 = 10, k2 = 20;
  bool inserted = false;
  EXPECT_EQ(t.FindOrInsert(&k1, &inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.FindOrInsert(&k2, &inserted), 1u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(t.FindOrInsert(&k1, &inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(t.size(), 2u);
}

TEST(GroupHashTableTest, KeyOfReturnsStoredKey) {
  GroupHashTable t(2);
  uint64_t key[2] = {7, 9};
  const uint32_t id = t.FindOrInsert(key);
  EXPECT_EQ(t.KeyOf(id)[0], 7u);
  EXPECT_EQ(t.KeyOf(id)[1], 9u);
}

TEST(GroupHashTableTest, WideKeysDistinguished) {
  GroupHashTable t(3);
  uint64_t a[3] = {1, 2, 3};
  uint64_t b[3] = {1, 2, 4};
  EXPECT_NE(t.FindOrInsert(a), t.FindOrInsert(b));
}

TEST(GroupHashTableTest, GrowPreservesMappings) {
  GroupHashTable t(1, 16);
  std::unordered_map<uint64_t, uint32_t> reference;
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.Uniform(3000);
    const uint32_t id = t.FindOrInsert(&k);
    auto it = reference.find(k);
    if (it == reference.end()) {
      reference.emplace(k, id);
    } else {
      EXPECT_EQ(it->second, id) << "key " << k;
    }
  }
  EXPECT_EQ(t.size(), reference.size());
}

TEST(GroupHashTableTest, DenseIdsInInsertionOrder) {
  GroupHashTable t(1);
  for (uint64_t k = 100; k < 200; ++k) {
    EXPECT_EQ(t.FindOrInsert(&k), static_cast<uint32_t>(k - 100));
  }
}

TEST(GroupHashTableTest, ZeroKeyIsValid) {
  GroupHashTable t(2);
  uint64_t zero[2] = {0, 0};
  const uint32_t id = t.FindOrInsert(zero);
  bool inserted = true;
  EXPECT_EQ(t.FindOrInsert(zero, &inserted), id);
  EXPECT_FALSE(inserted);
}

TEST(GroupHashTableTest, ProbeCounterAdvances) {
  GroupHashTable t(1);
  uint64_t k = 1;
  t.FindOrInsert(&k);
  EXPECT_GE(t.probes(), 1u);
}

// RAII guard restoring the default group-id limit even if the test fails.
struct ScopedMaxGroups {
  explicit ScopedMaxGroups(size_t limit) {
    GroupHashTable::OverrideMaxGroupsForTest(limit);
  }
  ~ScopedMaxGroups() { GroupHashTable::OverrideMaxGroupsForTest(0); }
};

TEST(GroupHashTableTest, GroupIdSpaceGuardThrows) {
  ScopedMaxGroups cap(2);
  GroupHashTable t(1);
  uint64_t k1 = 1, k2 = 2, k3 = 3;
  EXPECT_EQ(t.FindOrInsert(&k1), 0u);
  EXPECT_EQ(t.FindOrInsert(&k2), 1u);
  // Existing groups stay findable at the limit; only a *new* group throws.
  bool inserted = true;
  EXPECT_EQ(t.FindOrInsert(&k1, &inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_THROW(t.FindOrInsert(&k3), GroupIdSpaceExhausted);
  EXPECT_EQ(t.size(), 2u);
}

TEST(GroupHashTableTest, DenseGroupIdSpaceGuardThrows) {
  ScopedMaxGroups cap(2);
  DenseGroupTable t(0, 16);
  EXPECT_EQ(t.FindOrInsert(3), 0u);
  EXPECT_EQ(t.FindOrInsert(7), 1u);
  EXPECT_EQ(t.FindOrInsert(3), 0u);  // repeat lookup is fine at the limit
  EXPECT_THROW(t.FindOrInsert(9), GroupIdSpaceExhausted);
  EXPECT_EQ(t.size(), 2u);
}

TEST(GroupHashTableTest, OverrideZeroRestoresDefaultLimit) {
  GroupHashTable::OverrideMaxGroupsForTest(0);
  EXPECT_EQ(GroupHashTable::max_groups(), GroupHashTable::kMaxGroups);
}

class KeyWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(KeyWidthTest, ManyRandomKeysRoundTrip) {
  const int width = GetParam();
  GroupHashTable t(width);
  Rng rng(static_cast<uint64_t>(width));
  std::vector<std::vector<uint64_t>> keys;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint64_t> k(static_cast<size_t>(width));
    for (auto& w : k) w = rng.Uniform(50);
    keys.push_back(k);
  }
  std::vector<uint32_t> ids;
  for (auto& k : keys) ids.push_back(t.FindOrInsert(k.data()));
  // Re-looking up yields identical ids.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(t.FindOrInsert(keys[i].data()), ids[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KeyWidthTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace gbmqo
