// Execution-level checks of the Section 4.4 storage machinery: the BF/DF
// marks must change the catalog's *measured* peak temp bytes in the
// direction the recurrence predicts, and deeper CUBE lattices must execute
// correctly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/gbmqo.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

PlanNode Leaf(ColumnSet cols) {
  PlanNode n;
  n.columns = cols;
  n.required = true;
  return n;
}

/// Plan: root {flag,status,mode} with two materialized children
/// ({flag,status} and {flag,mode}), each serving leaves. Executing DF keeps
/// only one child subtree alive next to the root; BF holds both children.
LogicalPlan TwoChildPlan(TraversalMark mark) {
  PlanNode left;
  left.columns = {kReturnflag, kLinestatus};
  left.children = {Leaf({kReturnflag}), Leaf({kLinestatus})};
  PlanNode right;
  right.columns = {kReturnflag, kShipmode};
  right.required = true;  // serves the (flag, mode) request itself
  right.children = {Leaf({kShipmode})};
  PlanNode root;
  root.columns = {kReturnflag, kLinestatus, kShipmode};
  root.mark = mark;
  root.children = {left, right};
  LogicalPlan plan;
  plan.subplans = {root};
  return plan;
}

std::vector<GroupByRequest> TwoChildRequests() {
  return {GroupByRequest::Count({kReturnflag}),
          GroupByRequest::Count({kLinestatus}),
          GroupByRequest::Count({kShipmode}),
          GroupByRequest::Count({kReturnflag, kShipmode})};
}

TEST(ExecutorStorageTest, BreadthFirstHoldsMoreThanDepthFirst) {
  TablePtr t = GenerateLineitem({.rows = 20000, .seed = 8});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  PlanExecutor exec(&catalog, "lineitem");

  auto requests = TwoChildRequests();
  auto df = exec.Execute(TwoChildPlan(TraversalMark::kDepthFirst), requests);
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  auto bf = exec.Execute(TwoChildPlan(TraversalMark::kBreadthFirst), requests);
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();

  // Identical results...
  ASSERT_EQ(df->results.size(), bf->results.size());
  for (const auto& [cols, table] : df->results) {
    EXPECT_EQ(table->num_rows(), bf->results.at(cols)->num_rows());
  }
  // ...but BF's measured peak holds root + BOTH children simultaneously,
  // strictly more than DF's root + one child at a time.
  EXPECT_GT(bf->peak_temp_bytes, df->peak_temp_bytes);
}

TEST(ExecutorStorageTest, SchedulerPicksTheCheaperOrderHere) {
  // For this shape (small root relative to subtree sums is not the case:
  // the children are tiny), the recurrence must choose whichever side its
  // estimates favor — and the chosen order's measured peak must be <= the
  // opposite order's.
  TablePtr t = GenerateLineitem({.rows = 20000, .seed = 8});
  StatisticsManager stats(*t);
  WhatIfProvider whatif(&stats);
  LogicalPlan scheduled = TwoChildPlan(TraversalMark::kDepthFirst);
  SchedulePlanStorage(&scheduled, &whatif);

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  PlanExecutor exec(&catalog, "lineitem");
  auto requests = TwoChildRequests();
  auto chosen = exec.Execute(scheduled, requests);
  ASSERT_TRUE(chosen.ok());

  LogicalPlan opposite = scheduled;
  opposite.subplans[0].mark =
      scheduled.subplans[0].mark == TraversalMark::kDepthFirst
          ? TraversalMark::kBreadthFirst
          : TraversalMark::kDepthFirst;
  auto other = exec.Execute(opposite, requests);
  ASSERT_TRUE(other.ok());
  EXPECT_LE(chosen->peak_temp_bytes, other->peak_temp_bytes);
}

TEST(ExecutorStorageTest, ThreeColumnCubeExecutes) {
  TablePtr t = GenerateLineitem({.rows = 15000, .seed = 4});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());

  // Requests: four of the eight subsets of {flag, status, mode}.
  std::vector<GroupByRequest> requests = {
      GroupByRequest::Count({kReturnflag}),
      GroupByRequest::Count({kReturnflag, kLinestatus}),
      GroupByRequest::Count({kLinestatus, kShipmode}),
      GroupByRequest::Count({kReturnflag, kLinestatus, kShipmode})};
  LogicalPlan plan;
  PlanNode cube;
  cube.columns = {kReturnflag, kLinestatus, kShipmode};
  cube.kind = NodeKind::kCube;
  cube.required = true;  // serves the full set
  for (int i = 0; i < 3; ++i) {
    PlanNode leaf;
    leaf.columns = requests[static_cast<size_t>(i)].columns;
    leaf.required = true;
    cube.children.push_back(leaf);
  }
  plan.subplans = {cube};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&catalog, "lineitem");
  auto via_cube = exec.Execute(plan, requests);
  ASSERT_TRUE(via_cube.ok()) << via_cube.status().ToString();
  auto naive = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(naive.ok());
  for (const auto& [cols, table] : naive->results) {
    const TablePtr& other = via_cube->results.at(cols);
    EXPECT_EQ(table->num_rows(), other->num_rows()) << cols.ToString();
    // Spot-check: total counts equal the row count.
    int64_t total = 0;
    const int cnt_col = other->schema().FindColumn("cnt");
    ASSERT_GE(cnt_col, 0);
    for (size_t r = 0; r < other->num_rows(); ++r) {
      total += other->column(cnt_col).Int64At(r);
    }
    EXPECT_EQ(total, 15000);
  }
  EXPECT_EQ(catalog.temp_bytes(), 0u);
}

TEST(ExecutorStorageTest, CubeDropsLatticeTablesEagerly) {
  // Regression: RunCube used to keep every lattice table registered until
  // the node finished, so the measured peak equaled the total bytes
  // materialized. Each subset now drops once its last consumer subset has
  // been computed, so the peak must sit strictly below the total.
  TablePtr t = GenerateLineitem({.rows = 15000, .seed = 4});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());

  std::vector<GroupByRequest> requests;
  const std::vector<int> cols = {kReturnflag, kLinestatus, kShipmode};
  for (uint64_t mask = 1; mask < 8; ++mask) {
    ColumnSet s;
    for (int b = 0; b < 3; ++b) {
      if (mask & (1u << b)) s = s.With(cols[static_cast<size_t>(b)]);
    }
    requests.push_back(GroupByRequest::Count(s));
  }
  LogicalPlan plan;
  PlanNode cube;
  cube.columns = {kReturnflag, kLinestatus, kShipmode};
  cube.kind = NodeKind::kCube;
  cube.required = true;
  for (const GroupByRequest& req : requests) {
    if (req.columns == cube.columns) continue;
    PlanNode leaf;
    leaf.columns = req.columns;
    leaf.required = true;
    cube.children.push_back(leaf);
  }
  plan.subplans = {cube};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&catalog, "lineitem");
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->counters.bytes_materialized, 0u);
  EXPECT_LT(r->peak_temp_bytes, r->counters.bytes_materialized);
  EXPECT_EQ(catalog.temp_bytes(), 0u);  // everything released by node end
}

TEST(ExecutorStorageTest, RollupKeepsAtMostTwoLevelsLive) {
  // The prefix chain drops level k+1 as soon as level k is computed, so the
  // peak is bounded by the two largest adjacent levels — strictly below the
  // chain's total materialized bytes.
  TablePtr t = GenerateLineitem({.rows = 15000, .seed = 4});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());

  std::vector<GroupByRequest> requests = {
      GroupByRequest::Count({kReturnflag, kLinestatus, kShipmode}),
      GroupByRequest::Count({kReturnflag, kLinestatus}),
      GroupByRequest::Count({kReturnflag}),
  };
  LogicalPlan plan;
  PlanNode rollup;
  rollup.columns = {kReturnflag, kLinestatus, kShipmode};
  rollup.kind = NodeKind::kRollup;
  rollup.required = true;
  rollup.rollup_order = {kReturnflag, kLinestatus, kShipmode};
  for (size_t i = 1; i < requests.size(); ++i) {
    PlanNode leaf;
    leaf.columns = requests[i].columns;
    leaf.required = true;
    rollup.children.push_back(leaf);
  }
  plan.subplans = {rollup};
  ASSERT_TRUE(plan.Validate(requests).ok());

  PlanExecutor exec(&catalog, "lineitem");
  auto r = exec.Execute(plan, requests);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->counters.bytes_materialized, 0u);
  EXPECT_LT(r->peak_temp_bytes, r->counters.bytes_materialized);
  EXPECT_EQ(catalog.temp_bytes(), 0u);
}

TEST(ExecutorStorageTest, PeakReportedEvenWhenPlanIsFlat) {
  TablePtr t = GenerateLineitem({.rows = 5000, .seed = 2});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(t).ok());
  PlanExecutor exec(&catalog, "lineitem");
  auto requests = SingleColumnRequests({kReturnflag});
  auto r = exec.Execute(NaivePlan(requests), requests);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->peak_temp_bytes, 0u);  // leaves stream, nothing spooled
}

}  // namespace
}  // namespace gbmqo
