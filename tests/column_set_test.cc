#include "common/column_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace gbmqo {
namespace {

TEST(ColumnSetTest, EmptyByDefault) {
  ColumnSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(ColumnSetTest, InitializerListAndContains) {
  ColumnSet s{0, 3, 7};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.ToString(), "{0,3,7}");
}

TEST(ColumnSetTest, SingleAndFirstN) {
  EXPECT_EQ(ColumnSet::Single(5), (ColumnSet{5}));
  EXPECT_EQ(ColumnSet::FirstN(3), (ColumnSet{0, 1, 2}));
  EXPECT_EQ(ColumnSet::FirstN(0), ColumnSet());
  EXPECT_EQ(ColumnSet::FirstN(64).size(), 64);
}

TEST(ColumnSetTest, SetAlgebra) {
  ColumnSet a{0, 1, 2};
  ColumnSet b{2, 3};
  EXPECT_EQ(a.Union(b), (ColumnSet{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), (ColumnSet{2}));
  EXPECT_EQ(a.Minus(b), (ColumnSet{0, 1}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(ColumnSet{4}));
}

TEST(ColumnSetTest, SubsetRelations) {
  ColumnSet a{0, 1, 2};
  ColumnSet b{0, 2};
  EXPECT_TRUE(a.ContainsAll(b));
  EXPECT_TRUE(a.StrictSuperset(b));
  EXPECT_FALSE(b.ContainsAll(a));
  EXPECT_TRUE(a.ContainsAll(a));
  EXPECT_FALSE(a.StrictSuperset(a));
  EXPECT_TRUE(a.ContainsAll(ColumnSet()));  // empty set is subset of all
}

TEST(ColumnSetTest, WithWithout) {
  ColumnSet s{1};
  EXPECT_EQ(s.With(4), (ColumnSet{1, 4}));
  EXPECT_EQ(s.Without(1), ColumnSet());
  EXPECT_EQ(s.Without(9), s);  // removing absent column is a no-op
}

TEST(ColumnSetTest, ToVectorAscending) {
  ColumnSet s{9, 2, 40};
  std::vector<int> v = s.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[2], 40);
}

TEST(ColumnSetTest, HashableInUnorderedSet) {
  std::unordered_set<uint64_t> seen;
  ColumnSetHash h;
  // Distinct masks hash distinctly often enough to be usable (not a strict
  // requirement, but a sanity check against a degenerate hash).
  int collisions = 0;
  for (uint64_t m = 1; m < 512; ++m) {
    if (!seen.insert(h(ColumnSet(m))).second) ++collisions;
  }
  EXPECT_LT(collisions, 8);
}

TEST(ColumnSetTest, OrderingByMask) {
  EXPECT_TRUE(ColumnSet{0} < ColumnSet{1});
  EXPECT_TRUE((ColumnSet{0, 1}) < (ColumnSet{2}));
}

class ColumnSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnSetPropertyTest, UnionIsSupersetOfBoth) {
  const uint64_t m = GetParam();
  ColumnSet a(m & 0x0F0F0F0F0F0F0F0FULL);
  ColumnSet b(m & 0xFF00FF00FF00FF00ULL);
  ColumnSet u = a.Union(b);
  EXPECT_TRUE(u.ContainsAll(a));
  EXPECT_TRUE(u.ContainsAll(b));
  EXPECT_EQ(u.Minus(a).Minus(b), ColumnSet());
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
  EXPECT_EQ(u.size(), a.size() + b.size() - a.Intersect(b).size());
}

INSTANTIATE_TEST_SUITE_P(Masks, ColumnSetPropertyTest,
                         ::testing::Values(0ULL, 1ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL,
                                           0x123456789ABCDEF0ULL,
                                           0x8000000000000001ULL));

}  // namespace
}  // namespace gbmqo
