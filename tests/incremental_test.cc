// Randomized delta-vs-recompute differential testing of the streaming
// ingestion path: seeded ingest schedules (batch sizes 1..10^4; duplicate,
// new, and zipf-skewed keys) applied through Ingestor + DeltaMaintainer
// must leave every maintained aggregate bit-identical to a cold recompute
// over the final base relation — across all three forced aggregation
// kernels and 1/4/8 workers.
//
// Aggregates are chosen so exact comparison is sound, mirroring
// differential_test.cc: COUNT(*) and SUM over the small-integer quantity
// column are exact in the double accumulator regardless of merge order, and
// MIN/MAX are order-free (including over doubles). SUM over DOUBLE columns
// is deliberately absent — delta merging reassociates the fold, which is
// the documented last-ulp caveat in DESIGN.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "api/server.h"
#include "api/session.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/aggregate_cache.h"
#include "core/delta_maintenance.h"
#include "core/plan_executor.h"
#include "data/tpch_gen.h"
#include "exec/query_executor.h"
#include "storage/ingest.h"
#include "storage/storage_governor.h"

namespace gbmqo {
namespace {

// ---- canonical result comparison (as in differential_test.cc) -------------

std::vector<std::string> CanonicalRows(const Table& t, ColumnSet cols,
                                       const std::vector<AggRequest>& aggs,
                                       const Schema& base_schema) {
  std::vector<std::string> names;
  for (int c : cols.ToVector()) names.push_back(base_schema.column(c).name);
  for (const AggRequest& agg : aggs) {
    names.push_back(AggOutputName(agg, base_schema));
  }
  std::vector<const Column*> columns;
  for (const std::string& name : names) {
    const int ord = t.schema().FindColumn(name);
    EXPECT_GE(ord, 0) << "table " << t.name() << " lacks column " << name;
    if (ord < 0) return {};
    columns.push_back(&t.column(ord));
  }
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string s;
    for (size_t c = 0; c < columns.size(); ++c) {
      s += names[c] + "=" + columns[c]->ValueAt(r).ToString() + "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<TablePtr> ComputeAggregate(QueryExecutor* exec, const Table& input,
                                  bool input_is_base, const Schema& schema,
                                  ColumnSet cols,
                                  const std::vector<AggRequest>& aggs,
                                  const std::string& name) {
  Result<GroupByQuery> q =
      BuildGroupByOver(input, input_is_base, schema, cols, aggs);
  if (!q.ok()) return q.status();
  return exec->ExecuteGroupBy(input, *q, name, AggStrategy::kHash);
}

// ---- ingest schedule synthesis ---------------------------------------------

/// Log-uniform batch size in [1, 10^4]: small batches (the incremental win)
/// dominate, but every decade appears.
size_t BatchSize(Rng* rng) {
  size_t cap = 1;
  const int exponent = static_cast<int>(rng->Uniform(5));  // 0..4
  for (int i = 0; i < exponent; ++i) cap *= 10;
  return 1 + rng->Uniform(cap);
}

/// Delta rows: ~half duplicate existing group keys (zipf-skewed picks from
/// the current base, so hot groups get hotter), the rest come from a donor
/// table generated with a different seed/skew (new and shifted keys).
std::vector<std::vector<Value>> MakeDeltaRows(Rng* rng, const Table& current,
                                              const Table& donor,
                                              const ZipfGenerator& zipf,
                                              size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.5)) {
      rows.push_back(current.Row(zipf.Sample(rng) % current.num_rows()));
    } else {
      rows.push_back(donor.Row(rng->Uniform(donor.num_rows())));
    }
  }
  return rows;
}

// ---- the differential trial ------------------------------------------------

struct MaintainedEntry {
  ColumnSet columns;
  std::vector<AggRequest> aggs;
};

void RunTrial(uint64_t seed, AggKernel kernel, int workers) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " kernel=" +
               AggKernelName(kernel) + " workers=" + std::to_string(workers));
  Rng rng(seed);

  TablePtr base0 = GenerateLineitem(
      {.rows = 3000 + rng.Uniform(3000), .zipf_theta = 0.6, .seed = 1000 + seed});
  TablePtr donor = GenerateLineitem(
      {.rows = 12000, .zipf_theta = 1.0, .seed = 5000 + seed});
  const Schema& schema = base0->schema();

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(base0).ok());
  StorageGovernor governor(0);  // unlimited, but accounting is live
  AggregateCache cache(&catalog, 64.0 * 1024 * 1024, &governor);

  // Maintained grouping sets with deliberate lattice structure: one fine
  // 3-column set, two of its subsets sharing the same aggregate list (the
  // rollup-from-finer candidates), and one unrelated COUNT(*)-only entry.
  const std::vector<int> pool = LineitemAnalysisColumns();
  ColumnSet fine;
  while (fine.size() < 3) {
    fine = fine.With(pool[rng.Uniform(pool.size())]);
  }
  std::vector<AggRequest> aggs = {AggRequest{}};  // COUNT(*)
  aggs.push_back(AggRequest{AggKind::kSum, kQuantity});
  if (rng.Uniform(2) == 0) {
    aggs.push_back(AggRequest{AggKind::kMax, kExtendedprice});
  }
  if (rng.Uniform(2) == 0) {
    aggs.push_back(AggRequest{AggKind::kMin, kExtendedprice});
  }
  const std::vector<int> fine_cols = fine.ToVector();
  std::vector<MaintainedEntry> entries = {
      {fine, aggs},
      {ColumnSet{fine_cols[0], fine_cols[1]}, aggs},
      {ColumnSet::Single(fine_cols[2]), aggs},
      {ColumnSet::Single(pool[rng.Uniform(pool.size())]), {AggRequest{}}},
  };

  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, workers);
  exec.set_forced_kernel(kernel);
  size_t admitted = 0;
  for (const MaintainedEntry& e : entries) {
    Result<TablePtr> t =
        ComputeAggregate(&exec, *base0, /*input_is_base=*/true, schema,
                         e.columns, e.aggs, catalog.NextTempName("seeded"));
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    if (cache.AcceptPinned(e.columns, e.aggs, *t, /*registered=*/false)) {
      ++admitted;
    }
  }
  ASSERT_GE(admitted, 3u);  // the 4th may duplicate a key by chance

  DeltaMaintenanceOptions mopts;
  mopts.parallelism = workers;
  mopts.forced_kernel = kernel;
  DeltaMaintainer maintainer(&catalog, &cache, mopts);
  Ingestor ingestor(&catalog);
  ZipfGenerator zipf(base0->num_rows(), 1.1);

  TablePtr current = base0;
  const int batches = 1 + static_cast<int>(rng.Uniform(3));
  for (int b = 0; b < batches; ++b) {
    const size_t n = BatchSize(&rng);
    const std::vector<std::vector<Value>> rows =
        MakeDeltaRows(&rng, *current, *donor, zipf, n);
    Result<IngestBatch> batch = ingestor.AppendBatch("lineitem", rows);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->version, static_cast<uint64_t>(b + 1));
    EXPECT_EQ(batch->base->num_rows(), current->num_rows() + n);

    Result<DeltaMaintenanceReport> report = maintainer.ApplyDelta(
        batch->delta, batch->base, schema, batch->version);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->delta_rows, n);
    EXPECT_EQ(report->entries_dropped, 0u);
    EXPECT_EQ(report->entries_refreshed, admitted);
    current = batch->base;
  }

  // Differential gate: every maintained table must be bit-identical (up to
  // row order) to a cold recompute over the final base relation.
  for (const MaintainedEntry& e : entries) {
    TablePtr maintained = cache.Lookup(e.columns, e.aggs, 0);
    ASSERT_NE(maintained, nullptr) << e.columns.ToString();
    ExecContext cold_ctx;
    QueryExecutor cold(&cold_ctx, ScanMode::kColumnar, workers);
    cold.set_forced_kernel(kernel);
    Result<TablePtr> recomputed =
        ComputeAggregate(&cold, *current, /*input_is_base=*/true, schema,
                         e.columns, e.aggs, "cold_recompute");
    ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
    EXPECT_EQ(CanonicalRows(*maintained, e.columns, e.aggs, schema),
              CanonicalRows(**recomputed, e.columns, e.aggs, schema))
        << e.columns.ToString();
  }

  // Ingestion never leaks storage accounting: the governor holds exactly
  // the cache's pinned bytes, and every catalog temp byte is a cache pin.
  EXPECT_EQ(governor.reserved(), static_cast<double>(cache.pinned_bytes()));
  EXPECT_EQ(catalog.temp_bytes(), cache.pinned_bytes());
}

// 6 seeds x 3 kernels x 3 worker counts = 54 differential trials.
class IncrementalDifferential
    : public ::testing::TestWithParam<std::tuple<AggKernel, int>> {};

TEST_P(IncrementalDifferential, MaintainedMatchesColdRecompute) {
  const auto [kernel, workers] = GetParam();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RunTrial(seed, kernel, workers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllWorkerCounts, IncrementalDifferential,
    ::testing::Combine(::testing::Values(AggKernel::kDenseArray,
                                         AggKernel::kPackedKey,
                                         AggKernel::kMultiWord),
                       ::testing::Values(1, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<AggKernel, int>>& info) {
      return std::string(AggKernelName(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// ---- targeted maintenance behaviours ---------------------------------------

TEST(IncrementalTest, RollupReusesFinerDeltaAggregate) {
  TablePtr base = GenerateLineitem({.rows = 5000, .seed = 11});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(base).ok());
  AggregateCache cache(&catalog, 64.0 * 1024 * 1024);

  const std::vector<AggRequest> aggs = {AggRequest{},
                                        AggRequest{AggKind::kSum, kQuantity}};
  const ColumnSet fine{kReturnflag, kLinestatus, kShipmode};
  const ColumnSet mid{kReturnflag, kLinestatus};
  const ColumnSet coarse{kReturnflag};

  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, 1);
  for (ColumnSet cols : {fine, mid, coarse}) {
    auto t = ComputeAggregate(&exec, *base, true, base->schema(), cols, aggs,
                              catalog.NextTempName("seeded"));
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(cache.AcceptPinned(cols, aggs, *t, false));
  }

  Ingestor ingestor(&catalog);
  Rng rng(3);
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(base->Row(rng.Uniform(base->num_rows())));
  }
  auto batch = ingestor.AppendBatch("lineitem", rows);
  ASSERT_TRUE(batch.ok());

  DeltaMaintainer maintainer(&catalog, &cache);
  auto report =
      maintainer.ApplyDelta(batch->delta, batch->base, base->schema(), 1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->entries_refreshed, 3u);
  // Finest-first: {rf,ls,sm} aggregates the delta directly; {rf,ls} rolls
  // up from it; {rf} rolls up from {rf,ls}.
  EXPECT_EQ(report->rollup_reuses, 2u);

  // Rolled-up entries are still exact.
  for (ColumnSet cols : {fine, mid, coarse}) {
    TablePtr maintained = cache.Lookup(cols, aggs, 0);
    ASSERT_NE(maintained, nullptr);
    ExecContext cctx;
    QueryExecutor cold(&cctx, ScanMode::kColumnar, 1);
    auto recomputed = ComputeAggregate(&cold, *batch->base, true,
                                       base->schema(), cols, aggs, "cold");
    ASSERT_TRUE(recomputed.ok());
    EXPECT_EQ(CanonicalRows(*maintained, cols, aggs, base->schema()),
              CanonicalRows(**recomputed, cols, aggs, base->schema()));
  }

  // With rollup disabled the same schedule reports zero reuses.
  rows.clear();
  for (int i = 0; i < 100; ++i) {
    rows.push_back(base->Row(rng.Uniform(base->num_rows())));
  }
  auto batch2 = ingestor.AppendBatch("lineitem", rows);
  ASSERT_TRUE(batch2.ok());
  DeltaMaintenanceOptions no_rollup;
  no_rollup.rollup_from_finer = false;
  DeltaMaintainer direct(&catalog, &cache, no_rollup);
  auto report2 =
      direct.ApplyDelta(batch2->delta, batch2->base, base->schema(), 2);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->rollup_reuses, 0u);
  EXPECT_EQ(report2->entries_refreshed, 3u);
}

TEST(IncrementalTest, NeedsRecomputeEscapeHatchRebuildsFromBase) {
  TablePtr base = GenerateLineitem({.rows = 4000, .seed = 21});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(base).ok());
  AggregateCache cache(&catalog, 64.0 * 1024 * 1024);

  const ColumnSet cols{kReturnflag, kShipmode};
  const std::vector<AggRequest> aggs = {
      AggRequest{}, AggRequest{AggKind::kMin, kExtendedprice}};
  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, 1);
  auto t = ComputeAggregate(&exec, *base, true, base->schema(), cols, aggs,
                            catalog.NextTempName("seeded"));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(cache.AcceptPinned(cols, aggs, *t, false));

  // A caller that (say) retracted rows flags the entry; the next batch must
  // rebuild it from the base relation instead of delta-merging.
  cache.MarkNeedsRecompute(cols, aggs);

  Ingestor ingestor(&catalog);
  Rng rng(5);
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(base->Row(rng.Uniform(base->num_rows())));
  }
  auto batch = ingestor.AppendBatch("lineitem", rows);
  ASSERT_TRUE(batch.ok());
  DeltaMaintainer maintainer(&catalog, &cache);
  auto report =
      maintainer.ApplyDelta(batch->delta, batch->base, base->schema(), 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_recomputed, 1u);
  EXPECT_EQ(report->entries_refreshed, 0u);

  TablePtr maintained = cache.Lookup(cols, aggs, 0);
  ASSERT_NE(maintained, nullptr);
  ExecContext cctx;
  QueryExecutor cold(&cctx, ScanMode::kColumnar, 1);
  auto recomputed = ComputeAggregate(&cold, *batch->base, true, base->schema(),
                                     cols, aggs, "cold");
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(CanonicalRows(*maintained, cols, aggs, base->schema()),
            CanonicalRows(**recomputed, cols, aggs, base->schema()));
  // The flag is one-shot: the refresh cleared it.
  const auto entries = cache.SnapshotEntriesForRefresh();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].needs_recompute);
  EXPECT_EQ(entries[0].source_version, 1u);
}

TEST(IncrementalTest, EmptyBatchAdvancesVersionKeepsContent) {
  TablePtr base = GenerateLineitem({.rows = 2000, .seed = 31});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(base).ok());
  AggregateCache cache(&catalog, 64.0 * 1024 * 1024);

  const ColumnSet cols{kReturnflag};
  const std::vector<AggRequest> aggs = {AggRequest{}};
  ExecContext ctx;
  QueryExecutor exec(&ctx, ScanMode::kColumnar, 1);
  auto t = ComputeAggregate(&exec, *base, true, base->schema(), cols, aggs,
                            catalog.NextTempName("seeded"));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(cache.AcceptPinned(cols, aggs, *t, false));
  const auto before = CanonicalRows(**t, cols, aggs, base->schema());

  Ingestor ingestor(&catalog);
  auto batch = ingestor.AppendBatch("lineitem", {});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->version, 1u);
  EXPECT_EQ(catalog.table_version("lineitem"), 1u);

  DeltaMaintainer maintainer(&catalog, &cache);
  auto report =
      maintainer.ApplyDelta(batch->delta, batch->base, base->schema(), 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_refreshed, 1u);
  TablePtr maintained = cache.Lookup(cols, aggs, 0);
  ASSERT_NE(maintained, nullptr);
  EXPECT_EQ(CanonicalRows(*maintained, cols, aggs, base->schema()), before);
}

TEST(IncrementalTest, IngestValidatesRowsAgainstSchema) {
  TablePtr base = GenerateLineitem({.rows = 100, .seed = 41});
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase(base).ok());
  Ingestor ingestor(&catalog);

  // Wrong arity.
  auto bad = ingestor.AppendBatch("lineitem", {{Value(int64_t{1})}});
  EXPECT_FALSE(bad.ok());
  // NULL in a non-nullable column.
  std::vector<Value> row = base->Row(0);
  row[0] = Value(Null{});
  auto null_bad = ingestor.AppendBatch("lineitem", {row});
  EXPECT_FALSE(null_bad.ok());
  // A failed batch must not advance the version.
  EXPECT_EQ(ingestor.version("lineitem"), 0u);
  EXPECT_EQ(ingestor.current_name("lineitem"), "lineitem");

  auto ok = ingestor.AppendBatch("lineitem", {base->Row(0)});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ingestor.version("lineitem"), 1u);
  EXPECT_EQ(ingestor.current_name("lineitem"), "lineitem@v1");
  EXPECT_TRUE(catalog.Exists("lineitem@v1"));
}

// ---- server-level: warm entries survive ingestion --------------------------

TEST(IncrementalTest, ServerAppendBatchRefreshesWarmEntries) {
  TablePtr base = GenerateLineitem({.rows = 20000, .seed = 7});
  ServerOptions options;
  options.pool_size = 2;
  options.refresh_stats_on_ingest = false;  // keep the test fast
  Server server(base, options);
  const char* spec = "SINGLE(l_returnflag, l_linestatus, l_shipmode)";
  auto requests = server.Parse(spec);
  ASSERT_TRUE(requests.ok());

  auto cold = server.Execute(*requests);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->base_version, 0u);

  Rng rng(9);
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 700; ++i) {
    rows.push_back(base->Row(rng.Uniform(base->num_rows())));
  }
  auto ingest = server.AppendBatch(rows);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  EXPECT_EQ(ingest->version, 1u);
  EXPECT_EQ(ingest->rows_appended, 700u);
  // Every live entry (the plan may have cached intermediates beyond the
  // three requested sets) was refreshed in place; none dropped.
  EXPECT_EQ(ingest->entries_refreshed, server.stats().cache.entries);
  EXPECT_GE(ingest->entries_refreshed, requests->size());
  EXPECT_EQ(ingest->entries_dropped, 0u);

  // Refresh, not invalidate: the repeat is served entirely from the cache
  // at the *new* version — zero base scans — and matches direct execution
  // over the grown relation.
  auto warm = server.Execute(*requests);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->base_version, 1u);
  EXPECT_EQ(warm->counters.cache_hits, requests->size());
  EXPECT_EQ(warm->counters.cache_misses, 0u);
  EXPECT_EQ(warm->counters.bytes_scanned, 0u);

  Session session(server.current_base());
  for (const GroupByRequest& req : *requests) {
    auto direct = session.Execute({req});
    ASSERT_TRUE(direct.ok());
    const TablePtr& served = warm->results.at(req.columns);
    EXPECT_EQ(CanonicalRows(*served, req.columns, req.aggs, base->schema()),
              CanonicalRows(*direct->results.at(req.columns), req.columns,
                            req.aggs, base->schema()));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches_ingested, 1u);
  EXPECT_EQ(stats.rows_ingested, 700u);
  EXPECT_EQ(stats.base_version, 1u);
  EXPECT_EQ(stats.cache.refreshes, ingest->entries_refreshed);
}

TEST(IncrementalTest, ServerInvalidateModeDropsEntriesOnIngest) {
  TablePtr base = GenerateLineitem({.rows = 10000, .seed = 7});
  ServerOptions options;
  options.incremental_maintenance = false;  // the pre-ingestion behaviour
  options.refresh_stats_on_ingest = false;
  Server server(base, options);
  const char* spec = "SINGLE(l_returnflag, l_linestatus)";
  auto requests = server.Parse(spec);
  ASSERT_TRUE(requests.ok());
  ASSERT_TRUE(server.Execute(*requests).ok());

  auto ingest = server.AppendBatch({base->Row(0), base->Row(1)});
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest->entries_refreshed, 0u);
  EXPECT_EQ(server.stats().cache.entries, 0u);

  // Still correct — just cold again.
  auto after = server.Execute(*requests);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->base_version, 1u);
  EXPECT_EQ(after->counters.cache_hits, 0u);
}

}  // namespace
}  // namespace gbmqo
