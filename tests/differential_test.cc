// Randomized differential testing of the whole planning + execution stack:
// for seeded random request sets, the optimizer plan, the exhaustive-DP
// plan, and the GROUPING SETS baseline plan must all produce row-for-row
// identical result tables — and each plan must produce bit-identical
// results *and WorkCounters* at parallelism 1 and 4 (the morsel engine's
// fixed shard/partition layout makes counters thread-count independent).
// Each trial additionally re-runs the optimizer plan with every aggregation
// kernel forced (dense-array, packed, multi-word, sort-runs — see
// exec/agg_kernel.h) and requires the same results and per-kernel counter
// invariance.
//
// Aggregates are chosen so exact cross-plan comparison is sound: COUNT(*)
// and SUM over small-integer columns are exact in double at these row
// counts regardless of accumulation order, and MIN/MAX are order-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "core/grouping_sets_planner.h"
#include "core/optimizer.h"
#include "core/plan_executor.h"
#include "cost/optimizer_cost_model.h"
#include "data/sales_gen.h"
#include "data/tpch_gen.h"

namespace gbmqo {
namespace {

/// One dataset shared by all trials (exact statistics are cached across
/// trials in the StatisticsManager, so repeated optimizer runs stay cheap).
struct Dataset {
  Dataset(TablePtr t, std::vector<int> pool, int sum_col, int minmax_col)
      : table(std::move(t)),
        stats(*table),
        whatif(&stats),
        group_pool(std::move(pool)),
        sum_col(sum_col),
        minmax_col(minmax_col) {
    EXPECT_TRUE(catalog.RegisterBase(table).ok());
  }

  TablePtr table;
  Catalog catalog;
  StatisticsManager stats;
  WhatIfProvider whatif;
  std::vector<int> group_pool;  ///< grouping-column candidates
  int sum_col;                  ///< small-integer column (exact SUM)
  int minmax_col;               ///< any numeric column (order-free MIN/MAX)
};

/// ~66k rows: just over one 64Ki-row morsel, so hash aggregation takes the
/// real multi-shard build + partitioned-merge path.
Dataset& SalesData() {
  static Dataset* d = new Dataset(
      GenerateSales({.rows = 66000, .seed = 101}),
      {kStoreId, kRegion, kState, kCategory, kSubcategory, kBrand, kPromoId,
       kChannel, kOrderDate, kPaymentType},
      kSalesQuantity, kUnitPrice);
  return *d;
}

/// Small skewed lineitem (single-morsel fast path; Zipf draws as in the
/// paper's Figure 13 variants).
Dataset& ZipfData() {
  static Dataset* d = new Dataset(
      GenerateLineitem({.rows = 4000, .zipf_theta = 0.8, .seed = 33}),
      LineitemAnalysisColumns(), kQuantity, kExtendedprice);
  return *d;
}

/// 2–5 distinct random requests of 1–3 grouping columns; aggregates beyond
/// COUNT(*) are added with per-request coin flips.
std::vector<GroupByRequest> RandomRequests(Rng* rng, const Dataset& d) {
  const size_t nreq = 2 + rng->Uniform(4);
  std::set<uint64_t> seen;
  std::vector<GroupByRequest> out;
  for (int attempts = 0; out.size() < nreq && attempts < 100; ++attempts) {
    const size_t ncols = 1 + rng->Uniform(3);
    ColumnSet cols;
    for (size_t c = 0; c < ncols; ++c) {
      cols = cols.With(d.group_pool[rng->Uniform(d.group_pool.size())]);
    }
    if (!seen.insert(cols.mask()).second) continue;
    GroupByRequest req;
    req.columns = cols;
    req.aggs = {AggRequest{}};  // COUNT(*)
    if (rng->Uniform(2) == 0) {
      req.aggs.push_back(AggRequest{AggKind::kSum, d.sum_col});
    }
    if (rng->Uniform(3) == 0) {
      req.aggs.push_back(AggRequest{AggKind::kMax, d.minmax_col});
    }
    if (rng->Uniform(4) == 0) {
      req.aggs.push_back(AggRequest{AggKind::kMin, d.minmax_col});
    }
    out.push_back(std::move(req));
  }
  return out;
}

/// Order-independent canonical form of a result table, projected onto what
/// the request asked for: grouping columns plus the request's aggregate
/// output columns. (A plan may legally materialize *extra* aggregate
/// columns on a result node that also feeds children — UnionAggs — so raw
/// schemas are not comparable across plans, but the requested projection
/// must be.) Rows are rendered as name=value runs and sorted.
std::vector<std::string> CanonicalRows(const Table& t,
                                       const GroupByRequest& req,
                                       const Schema& base_schema) {
  std::vector<std::string> names;
  for (int c : req.columns.ToVector()) {
    names.push_back(base_schema.column(c).name);
  }
  for (const AggRequest& agg : req.aggs) {
    names.push_back(AggOutputName(agg, base_schema));
  }
  std::vector<const Column*> cols;
  for (const std::string& name : names) {
    const int ord = t.schema().FindColumn(name);
    EXPECT_GE(ord, 0) << "result " << t.name() << " lacks column " << name;
    if (ord < 0) return {};
    cols.push_back(&t.column(ord));
  }
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string s;
    for (size_t c = 0; c < cols.size(); ++c) {
      s += names[c] + "=" + cols[c]->ValueAt(r).ToString() + "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

using CanonicalResults = std::map<ColumnSet, std::vector<std::string>>;

struct RunOutcome {
  CanonicalResults results;
  WorkCounters counters;
};

RunOutcome Execute(Dataset* d, const LogicalPlan& plan,
                   const std::vector<GroupByRequest>& requests, ScanMode mode,
                   int parallelism,
                   std::optional<AggKernel> forced_kernel = std::nullopt,
                   bool force_scalar = false) {
  PlanExecutor exec(&d->catalog, d->table->name(), mode, parallelism);
  exec.set_forced_kernel(forced_kernel);
  exec.set_force_scalar(force_scalar);
  auto r = exec.Execute(plan, requests);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  RunOutcome out;
  if (!r.ok()) return out;
  out.counters = r->counters;
  for (const GroupByRequest& req : requests) {
    auto it = r->results.find(req.columns);
    EXPECT_TRUE(it != r->results.end())
        << "no result for " << req.columns.ToString();
    if (it == r->results.end()) continue;
    out.results[req.columns] =
        CanonicalRows(*it->second, req, d->table->schema());
  }
  return out;
}

/// Bit-identical comparison — no tolerances, including the double field.
void ExpectCountersIdentical(const WorkCounters& a, const WorkCounters& b,
                             const std::string& what) {
  EXPECT_EQ(a.rows_scanned, b.rows_scanned) << what;
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned) << what;
  EXPECT_EQ(a.rows_emitted, b.rows_emitted) << what;
  EXPECT_EQ(a.bytes_materialized, b.bytes_materialized) << what;
  EXPECT_EQ(a.hash_probes, b.hash_probes) << what;
  EXPECT_EQ(a.rows_sorted, b.rows_sorted) << what;
  EXPECT_EQ(a.queries_executed, b.queries_executed) << what;
  EXPECT_EQ(a.agg_cpu_units, b.agg_cpu_units) << what;
  EXPECT_EQ(a.dense_kernel_rows, b.dense_kernel_rows) << what;
  EXPECT_EQ(a.packed_kernel_rows, b.packed_kernel_rows) << what;
  EXPECT_EQ(a.multiword_kernel_rows, b.multiword_kernel_rows) << what;
  EXPECT_EQ(a.sort_kernel_rows, b.sort_kernel_rows) << what;
  EXPECT_EQ(a.queries_spilled, b.queries_spilled) << what;
  EXPECT_EQ(a.spill_partitions, b.spill_partitions) << what;
  EXPECT_EQ(a.spill_bytes_written, b.spill_bytes_written) << what;
  EXPECT_EQ(a.spill_bytes_read, b.spill_bytes_read) << what;
  EXPECT_EQ(a.scan_touch_checksum, b.scan_touch_checksum) << what;
}

void RunTrial(Dataset* d, uint64_t seed, ScanMode mode) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  const std::vector<GroupByRequest> requests = RandomRequests(&rng, *d);
  ASSERT_GE(requests.size(), 2u);
  ASSERT_TRUE(ValidateRequests(requests, d->table->schema()).ok());

  OptimizerCostModel greedy_model(*d->table);
  GbMqoOptimizer optimizer(&greedy_model, &d->whatif);
  auto greedy = optimizer.Optimize(requests);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();

  OptimizerCostModel exact_model(*d->table);
  ExhaustiveOptimizer exhaustive(&exact_model, &d->whatif);
  auto exact = exhaustive.Optimize(requests);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  auto baseline = GroupingSetsPlanner().Plan(requests, d->table->schema());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::vector<std::pair<std::string, const LogicalPlan*>> plans = {
      {"optimizer", &greedy->plan},
      {"exhaustive", &exact->plan},
      {"grouping-sets", &*baseline},
  };

  CanonicalResults reference;
  for (const auto& [name, plan] : plans) {
    const RunOutcome serial = Execute(d, *plan, requests, mode, 1);
    const RunOutcome parallel = Execute(d, *plan, requests, mode, 4);
    // Same plan, different thread count: results AND counters identical.
    EXPECT_EQ(serial.results, parallel.results) << name;
    ExpectCountersIdentical(serial.counters, parallel.counters, name);
    // Across plans: identical result tables (counters legitimately differ —
    // that difference is the whole point of GB-MQO).
    if (reference.empty()) {
      reference = serial.results;
      ASSERT_EQ(reference.size(), requests.size()) << name;
    } else {
      EXPECT_EQ(reference, serial.results) << name << " vs optimizer plan";
    }
  }

  // Every aggregation kernel, forced end to end through the optimizer plan,
  // must reproduce the reference results — and each kernel's counters must
  // themselves be thread-count invariant. (A forced kernel that is
  // ineligible for some query falls down the ladder, so this also covers
  // mixed-kernel plans.) Each kernel is additionally re-run pinned to the
  // scalar SIMD tier (set_force_scalar) at 1 and 8 workers: the vectorized
  // hot loops — key formation, tagged hash probe, columnar selection and
  // accumulate — must be bit-identical to scalar execution in both result
  // tables and every WorkCounters field, across the force_scalar x
  // parallelism {1,4,8} matrix.
  for (AggKernel kernel : {AggKernel::kDenseArray, AggKernel::kPackedKey,
                           AggKernel::kMultiWord, AggKernel::kSortRuns}) {
    const std::string what = std::string("forced ") + AggKernelName(kernel);
    SCOPED_TRACE(what);
    const RunOutcome serial =
        Execute(d, greedy->plan, requests, mode, 1, kernel);
    const RunOutcome parallel =
        Execute(d, greedy->plan, requests, mode, 4, kernel);
    EXPECT_EQ(serial.results, reference);
    EXPECT_EQ(parallel.results, reference);
    ExpectCountersIdentical(serial.counters, parallel.counters, what);

    const RunOutcome scalar_serial = Execute(d, greedy->plan, requests, mode,
                                             1, kernel, /*force_scalar=*/true);
    const RunOutcome scalar_wide = Execute(d, greedy->plan, requests, mode, 8,
                                           kernel, /*force_scalar=*/true);
    EXPECT_EQ(scalar_serial.results, reference) << what << " scalar";
    EXPECT_EQ(scalar_wide.results, reference) << what << " scalar par8";
    ExpectCountersIdentical(serial.counters, scalar_serial.counters,
                            what + " simd-vs-scalar");
    ExpectCountersIdentical(scalar_serial.counters, scalar_wide.counters,
                            what + " scalar par1-vs-par8");
  }
}

TEST(DifferentialTest, ZipfLineitemTrials) {
  // 40 fast trials on the single-morsel path (columnar scans keep the
  // 3-plans x 2-parallelism matrix cheap).
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RunTrial(&ZipfData(), seed, ScanMode::kColumnar);
  }
}

TEST(DifferentialTest, ZipfLineitemRowStoreTrials) {
  // Row-store scans add the scan-touch checksum to the counters under test.
  for (uint64_t seed = 100; seed < 108; ++seed) {
    RunTrial(&ZipfData(), seed, ScanMode::kRowStore);
  }
}

TEST(DifferentialTest, SalesMultiMorselTrials) {
  // 66k rows: two morsels, so parallel runs take the real multi-shard
  // build + partitioned-merge path and the checksum crosses shards.
  for (uint64_t seed = 200; seed < 208; ++seed) {
    RunTrial(&SalesData(), seed, ScanMode::kRowStore);
  }
}

}  // namespace
}  // namespace gbmqo
