// RunTasks regression tests, centered on exception propagation: a task that
// throws on a worker thread must surface the exception on the calling
// thread (not std::terminate the process) after all workers have joined.
#include "exec/task_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace gbmqo {
namespace {

TEST(RunTasksTest, RunsEveryTaskExactlyOnce) {
  for (int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const int n = 500;
    std::vector<std::atomic<int>> hits(n);
    RunTasks(n, workers, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(RunTasksTest, ZeroTasksIsANoOp) {
  RunTasks(0, 4, [](int) { FAIL() << "no task should run"; });
}

TEST(RunTasksTest, SerialPathRethrowsAndStops) {
  std::atomic<int> ran{0};
  EXPECT_THROW(RunTasks(100, 1,
                        [&](int i) {
                          if (i == 3) throw std::runtime_error("boom");
                          ran.fetch_add(1);
                        }),
               std::runtime_error);
  // Serial semantics: tasks after the throwing one never run.
  EXPECT_EQ(ran.load(), 3);
}

TEST(RunTasksTest, ParallelExceptionPropagatesToCaller) {
  // Regression: the task loop used to run tasks bare, so a throwing task
  // called std::terminate from a worker thread. The caller must now see the
  // exception (with its message intact) after every worker joined.
  std::atomic<int> ran{0};
  try {
    RunTasks(200, 4, [&](int i) {
      if (i == 37) throw std::runtime_error("task 37 failed");
      ran.fetch_add(1);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 37 failed");
  }
  // Unclaimed tasks are abandoned after the failure; at least the tasks
  // claimed before it may have run, but never the full set.
  EXPECT_LT(ran.load(), 200);
}

TEST(RunTasksTest, FirstExceptionWinsWhenSeveralTasksThrow) {
  // All tasks throw; exactly one exception must reach the caller and it
  // must be one of the thrown ones (no mixing, no terminate).
  try {
    RunTasks(50, 4, [&](int i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u);
  }
}

}  // namespace
}  // namespace gbmqo
