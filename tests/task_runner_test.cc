// RunTasks / RunTaskGraph regression tests, centered on exception
// propagation (a task that throws on a worker thread must surface the
// exception on the calling thread, not std::terminate the process) and on
// the graph runner's ordering, dependency and admission-gate contracts.
#include "exec/task_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace gbmqo {
namespace {

TEST(RunTasksTest, RunsEveryTaskExactlyOnce) {
  for (int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const int n = 500;
    std::vector<std::atomic<int>> hits(n);
    RunTasks(n, workers, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(RunTasksTest, ZeroTasksIsANoOp) {
  RunTasks(0, 4, [](int) { FAIL() << "no task should run"; });
}

TEST(RunTasksTest, SerialPathRethrowsAndStops) {
  std::atomic<int> ran{0};
  EXPECT_THROW(RunTasks(100, 1,
                        [&](int i) {
                          if (i == 3) throw std::runtime_error("boom");
                          ran.fetch_add(1);
                        }),
               std::runtime_error);
  // Serial semantics: tasks after the throwing one never run.
  EXPECT_EQ(ran.load(), 3);
}

TEST(RunTasksTest, ParallelExceptionPropagatesToCaller) {
  // Regression: the task loop used to run tasks bare, so a throwing task
  // called std::terminate from a worker thread. The caller must now see the
  // exception (with its message intact) after every worker joined.
  std::atomic<int> ran{0};
  try {
    RunTasks(200, 4, [&](int i) {
      if (i == 37) throw std::runtime_error("task 37 failed");
      ran.fetch_add(1);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 37 failed");
  }
  // Unclaimed tasks are abandoned after the failure; at least the tasks
  // claimed before it may have run, but never the full set.
  EXPECT_LT(ran.load(), 200);
}

TEST(RunTasksTest, FirstExceptionWinsWhenSeveralTasksThrow) {
  // All tasks throw; exactly one exception must reach the caller and it
  // must be one of the thrown ones (no mixing, no terminate).
  try {
    RunTasks(50, 4, [&](int i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u);
  }
}

TEST(RunTaskGraphTest, RunsEveryTaskAfterItsDependencies) {
  // Binary-tree-ish DAG: task i depends on (i-1)/2. Every task must run
  // exactly once, after its predecessor, for any worker count.
  const int n = 200;
  std::vector<std::vector<int>> deps(n);
  for (int i = 1; i < n; ++i) deps[i] = {(i - 1) / 2};
  for (int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    std::vector<std::atomic<int>> done(n);
    RunTaskGraph(n, deps, workers, nullptr, [&](int i, int) {
      if (i > 0) EXPECT_EQ(done[(i - 1) / 2].load(), 1) << "dep of " << i;
      done[i].fetch_add(1);
    });
    for (int i = 0; i < n; ++i) EXPECT_EQ(done[i].load(), 1) << i;
  }
}

TEST(RunTaskGraphTest, SingleWorkerRunsInIndexOrder) {
  // With one worker and no blocking dependencies, the ready set drains
  // lowest-index-first — the canonical (recursive-traversal) order that
  // PlanExecutor's storage accounting relies on.
  const int n = 64;
  std::vector<std::vector<int>> deps(n);
  std::vector<int> order;
  RunTaskGraph(n, deps, 1, nullptr, [&](int i, int) { order.push_back(i); });
  ASSERT_EQ(order.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
}

TEST(RunTaskGraphTest, ZeroTasksIsANoOp) {
  RunTaskGraph(0, {}, 4, nullptr, [](int, int) { FAIL() << "no task"; });
}

TEST(RunTaskGraphTest, AdmissionGateDefersButNeverStarves) {
  // A gate that only admits one "heavy" task at a time: tasks still all run
  // (forced admission guarantees progress), and the concurrent-heavy count
  // never exceeds one even with many workers.
  const int n = 40;
  std::vector<std::vector<int>> deps(n);
  std::mutex mu;
  int heavy_live = 0;
  int max_heavy_live = 0;
  std::atomic<int> ran{0};
  auto admit = [&](int, bool forced) {
    std::lock_guard<std::mutex> lock(mu);
    if (!forced && heavy_live >= 1) return false;
    ++heavy_live;
    max_heavy_live = std::max(max_heavy_live, heavy_live);
    return true;
  };
  RunTaskGraph(n, deps, 8, admit, [&](int, int) {
    ran.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    --heavy_live;
  });
  EXPECT_EQ(ran.load(), n);
  // Forced admission fires only when nothing is running, so the cap holds.
  EXPECT_EQ(max_heavy_live, 1);
}

TEST(RunTaskGraphTest, ExceptionPropagatesAndSkipsSuccessors) {
  // Chain 0 -> 1 -> 2 -> 3: task 1 throws; 2 and 3 must never run and the
  // caller sees the original exception.
  std::vector<std::vector<int>> deps = {{}, {0}, {1}, {2}};
  std::vector<int> ran;
  std::mutex mu;
  try {
    RunTaskGraph(4, deps, 2, nullptr, [&](int i, int) {
      if (i == 1) throw std::runtime_error("task 1 failed");
      std::lock_guard<std::mutex> lock(mu);
      ran.push_back(i);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1 failed");
  }
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_EQ(ran[0], 0);
}

TEST(RunTaskGraphTest, ReportsActiveWorkerCount) {
  // The `active` argument counts tasks running at dispatch, at least 1.
  std::vector<std::vector<int>> deps(3);
  RunTaskGraph(3, deps, 1, nullptr,
               [&](int, int active) { EXPECT_EQ(active, 1); });
}

}  // namespace
}  // namespace gbmqo
