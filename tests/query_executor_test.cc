#include "exec/query_executor.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/group_hash_table.h"

namespace gbmqo {
namespace {

// Reference group-by: maps stringified key -> (count, sum, min, max) using
// the slow-but-obviously-correct route through Value.
struct RefAgg {
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  bool seen = false;
};

std::map<std::string, RefAgg> ReferenceGroupBy(const Table& t, ColumnSet group,
                                               int agg_arg) {
  std::map<std::string, RefAgg> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key;
    for (int c : group.ToVector()) {
      key += t.column(c).ValueAt(row).ToString();
      key += "|";
    }
    RefAgg& agg = out[key];
    agg.count++;
    if (agg_arg >= 0 && !t.column(agg_arg).IsNull(row)) {
      const double v = t.column(agg_arg).NumericAt(row);
      if (!agg.seen) {
        agg.sum = v;
        agg.min = v;
        agg.max = v;
        agg.seen = true;
      } else {
        agg.sum += v;
        if (v < agg.min) agg.min = v;
        if (v > agg.max) agg.max = v;
      }
    }
  }
  return out;
}

// Re-keys an executed result table the same way for comparison.
std::map<std::string, std::vector<Value>> KeyedResult(const Table& result,
                                                      int num_group_cols) {
  std::map<std::string, std::vector<Value>> out;
  for (size_t row = 0; row < result.num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < num_group_cols; ++c) {
      key += result.column(c).ValueAt(row).ToString();
      key += "|";
    }
    std::vector<Value> aggs;
    for (int c = num_group_cols; c < result.schema().num_columns(); ++c) {
      aggs.push_back(result.column(c).ValueAt(row));
    }
    EXPECT_EQ(out.count(key), 0u) << "duplicate group " << key;
    out[key] = std::move(aggs);
  }
  return out;
}

TablePtr MakeMixedTable(int rows, uint64_t seed, bool with_nulls) {
  Schema schema({{"g1", DataType::kInt64, with_nulls},
                 {"g2", DataType::kString, with_nulls},
                 {"v", DataType::kDouble, with_nulls},
                 {"w", DataType::kInt64, false}});
  TableBuilder b(schema);
  Rng rng(seed);
  const char* names[] = {"red", "green", "blue", ""};
  for (int i = 0; i < rows; ++i) {
    Value g1 = (with_nulls && rng.Bernoulli(0.1))
                   ? Value(Null{})
                   : Value(static_cast<int64_t>(rng.Uniform(5)));
    Value g2 = (with_nulls && rng.Bernoulli(0.1))
                   ? Value(Null{})
                   : Value(names[rng.Uniform(4)]);
    Value v = (with_nulls && rng.Bernoulli(0.2))
                  ? Value(Null{})
                  : Value(static_cast<double>(rng.Uniform(100)) / 4.0);
    Value w = Value(static_cast<int64_t>(rng.Uniform(1000)));
    EXPECT_TRUE(b.AppendRow({g1, g2, v, w}).ok());
  }
  return *b.Build("mixed");
}

class StrategyTest : public ::testing::TestWithParam<AggStrategy> {};

TEST_P(StrategyTest, CountStarMatchesReference) {
  TablePtr t = MakeMixedTable(2000, 17, /*with_nulls=*/true);
  if (GetParam() == AggStrategy::kIndexStream) {
    ASSERT_TRUE(t->CreateIndex(ColumnSet{0, 1}).ok());
  }
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out", GetParam());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto ref = ReferenceGroupBy(*t, q.grouping, -1);
  auto got = KeyedResult(**r, 2);
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [key, aggs] : got) {
    ASSERT_TRUE(ref.count(key)) << key;
    EXPECT_EQ(aggs[0], Value(ref[key].count)) << key;
  }
}

TEST_P(StrategyTest, SumMinMaxMatchesReference) {
  TablePtr t = MakeMixedTable(1500, 23, /*with_nulls=*/true);
  if (GetParam() == AggStrategy::kIndexStream) {
    ASSERT_TRUE(t->CreateIndex(ColumnSet{0}).ok());
  }
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0},
                 {AggregateSpec::CountStar("cnt"), AggregateSpec::Sum(2, "s"),
                  AggregateSpec::Min(2, "mn"), AggregateSpec::Max(2, "mx")}};
  auto r = exec.ExecuteGroupBy(*t, q, "out", GetParam());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto ref = ReferenceGroupBy(*t, q.grouping, 2);
  auto got = KeyedResult(**r, 1);
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [key, aggs] : got) {
    ASSERT_TRUE(ref.count(key)) << key;
    const RefAgg& ra = ref[key];
    EXPECT_EQ(aggs[0], Value(ra.count)) << key;
    if (!ra.seen) {
      EXPECT_TRUE(aggs[1].is_null());
      EXPECT_TRUE(aggs[2].is_null());
      EXPECT_TRUE(aggs[3].is_null());
    } else {
      EXPECT_NEAR(aggs[1].AsDouble(), ra.sum, 1e-9) << key;
      EXPECT_DOUBLE_EQ(aggs[2].AsDouble(), ra.min) << key;
      EXPECT_DOUBLE_EQ(aggs[3].AsDouble(), ra.max) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyTest,
                         ::testing::Values(AggStrategy::kHash,
                                           AggStrategy::kSort,
                                           AggStrategy::kIndexStream));

TEST(QueryExecutorTest, GroupCountsSumToInputRows) {
  TablePtr t = MakeMixedTable(3000, 5, true);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out");
  ASSERT_TRUE(r.ok());
  int64_t total = 0;
  for (size_t i = 0; i < (*r)->num_rows(); ++i) {
    total += (*r)->column(2).Int64At(i);
  }
  EXPECT_EQ(total, 3000);
}

TEST(QueryExecutorTest, EmptyGroupingSetIsGrandTotal) {
  TablePtr t = MakeMixedTable(100, 5, false);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet(), {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->column(0).Int64At(0), 100);
}

TEST(QueryExecutorTest, EmptyInputProducesNoGroups) {
  TableBuilder b(Schema({{"a", DataType::kInt64, false}}));
  TablePtr t = *b.Build("empty");
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 0u);
}

TEST(QueryExecutorTest, NullIsItsOwnGroup) {
  TableBuilder b(Schema({{"a", DataType::kInt64, true}}));
  ASSERT_TRUE(b.AppendRow({Value(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{})}).ok());
  TablePtr t = *b.Build("t");
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 2u);
  int64_t null_count = 0;
  for (size_t i = 0; i < 2; ++i) {
    if ((*r)->column(0).IsNull(i)) null_count = (*r)->column(1).Int64At(i);
  }
  EXPECT_EQ(null_count, 2);
}

TEST(QueryExecutorTest, NullDistinctFromZeroAndEmptyString) {
  TableBuilder b(Schema({{"a", DataType::kInt64, true},
                         {"s", DataType::kString, true}}));
  ASSERT_TRUE(b.AppendRow({Value(0), Value("")}).ok());
  ASSERT_TRUE(b.AppendRow({Value(Null{}), Value(Null{})}).ok());
  TablePtr t = *b.Build("t");
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 2u);
}

TEST(QueryExecutorTest, ReaggregationEquivalence) {
  // COUNT(*) over (g1) computed directly equals SUM(cnt) over the
  // materialized (g1,g2) intermediate — the decomposability PlanExecutor
  // relies on (Section 5.2 of the paper).
  TablePtr t = MakeMixedTable(4000, 31, true);
  ExecContext ctx;
  QueryExecutor exec(&ctx);

  GroupByQuery direct{ColumnSet{0}, {AggregateSpec::CountStar()}};
  auto direct_r = exec.ExecuteGroupBy(*t, direct, "direct");
  ASSERT_TRUE(direct_r.ok());

  GroupByQuery pair{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  auto mid = exec.ExecuteGroupBy(*t, pair, "mid");
  ASSERT_TRUE(mid.ok());
  // In the intermediate, g1 is ordinal 0 and cnt is ordinal 2.
  GroupByQuery rollup{ColumnSet{0}, {AggregateSpec::Sum(2, "cnt")}};
  auto rolled = exec.ExecuteGroupBy(**mid, rollup, "rolled");
  ASSERT_TRUE(rolled.ok());

  auto a = KeyedResult(**direct_r, 1);
  auto b = KeyedResult(**rolled, 1);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, aggs] : a) {
    ASSERT_TRUE(b.count(key)) << key;
    EXPECT_EQ(aggs[0].AsDouble(), b[key][0].AsDouble()) << key;
  }
}

TEST(QueryExecutorTest, SharedScanMatchesSeparateExecution) {
  TablePtr t = MakeMixedTable(2500, 47, true);
  ExecContext ctx1, ctx2;
  QueryExecutor exec1(&ctx1), exec2(&ctx2);
  std::vector<GroupByQuery> queries = {
      {ColumnSet{0}, {AggregateSpec::CountStar()}},
      {ColumnSet{1}, {AggregateSpec::CountStar()}},
      {ColumnSet{0, 1}, {AggregateSpec::CountStar()}},
  };
  auto shared = exec1.ExecuteSharedScan(*t, queries, {"s0", "s1", "s2"});
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto sep = exec2.ExecuteGroupBy(*t, queries[i], "sep");
    ASSERT_TRUE(sep.ok());
    const int ng = queries[i].grouping.size();
    auto a = KeyedResult(*(*shared)[i], ng);
    auto b = KeyedResult(**sep, ng);
    EXPECT_EQ(a.size(), b.size());
    for (const auto& [key, aggs] : a) {
      ASSERT_TRUE(b.count(key));
      EXPECT_EQ(aggs[0].AsDouble(), b[key][0].AsDouble());
    }
  }
  // Shared scan reads the input once; separate execution reads it 3 times.
  EXPECT_EQ(ctx1.counters().rows_scanned, t->num_rows());
  EXPECT_EQ(ctx2.counters().rows_scanned, 3 * t->num_rows());
}

TEST(QueryExecutorTest, SharedScanAttributesKernelWorkPerQuery) {
  // Satellite pin: a shared pass charges scan-side work once but per-query
  // kernel work per query. Each query's kernel choice is the same as its
  // solo run, so the kernel-row counters of the fused pass must equal the
  // SUM of the solo runs' — while rows_scanned stays one scan.
  TablePtr t = MakeMixedTable(3000, 61, /*with_nulls=*/false);
  std::vector<GroupByQuery> queries = {
      {ColumnSet{0}, {AggregateSpec::CountStar()}},     // tiny domain: dense
      {ColumnSet{0, 2}, {AggregateSpec::CountStar()}},  // int+double: >64 key
      {ColumnSet{3}, {AggregateSpec::CountStar()}},     // 1000-domain: dense
  };

  ExecContext fused_ctx;
  QueryExecutor fused(&fused_ctx);
  auto shared = fused.ExecuteSharedScan(*t, queries, {"s0", "s1", "s2"});
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();

  WorkCounters solo_sum;
  std::vector<WorkCounters> solo(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExecContext ctx;
    QueryExecutor exec(&ctx);
    ASSERT_TRUE(
        exec.ExecuteGroupBy(*t, queries[i], "solo", AggStrategy::kHash).ok());
    solo[i] = ctx.counters();
    solo_sum += ctx.counters();
  }

  const WorkCounters& f = fused_ctx.counters();
  // Per-query work: identical to the solo total, query by query.
  EXPECT_EQ(f.dense_kernel_rows, solo_sum.dense_kernel_rows);
  EXPECT_EQ(f.packed_kernel_rows, solo_sum.packed_kernel_rows);
  EXPECT_EQ(f.multiword_kernel_rows, solo_sum.multiword_kernel_rows);
  EXPECT_EQ(f.hash_probes, solo_sum.hash_probes);
  EXPECT_EQ(f.rows_emitted, solo_sum.rows_emitted);
  EXPECT_EQ(f.queries_executed, 3u);
  // The mixed batch really exercised distinct kernels per query.
  EXPECT_EQ(solo[0].dense_kernel_rows, t->num_rows());
  EXPECT_EQ(solo[1].multiword_kernel_rows, t->num_rows());
  // Scan-side work: one pass, not three — this is what makes a fused run
  // distinguishable from N separate scans in WorkCounters.
  EXPECT_EQ(f.rows_scanned, t->num_rows());
  EXPECT_EQ(solo_sum.rows_scanned, 3 * t->num_rows());
  EXPECT_LT(f.bytes_scanned, solo_sum.bytes_scanned);
}

TEST(QueryExecutorTest, SharedScanEmptyBatchChargesNothing) {
  // Regression: an empty batch used to charge a full scan's rows and bytes
  // despite doing no work at all.
  TablePtr t = MakeMixedTable(500, 7, false);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  auto r = exec.ExecuteSharedScan(*t, {}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(ctx.counters().rows_scanned, 0u);
  EXPECT_EQ(ctx.counters().bytes_scanned, 0u);
  EXPECT_EQ(ctx.counters().queries_executed, 0u);
}

TEST(QueryExecutorTest, WorkCountersPopulated) {
  TablePtr t = MakeMixedTable(1000, 3, false);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  ASSERT_TRUE(exec.ExecuteGroupBy(*t, q, "out").ok());
  const WorkCounters& wc = ctx.counters();
  EXPECT_EQ(wc.rows_scanned, 1000u);
  EXPECT_GT(wc.bytes_scanned, 0u);
  EXPECT_GT(wc.rows_emitted, 0u);
  // g1's tiny int domain makes this a dense-array aggregation: every row is
  // charged to the dense kernel and no hash probes happen at all.
  EXPECT_EQ(wc.dense_kernel_rows, 1000u);
  EXPECT_EQ(wc.hash_probes, 0u);
  EXPECT_EQ(wc.queries_executed, 1u);
  EXPECT_GT(wc.WorkUnits(), 0.0);
}

TEST(QueryExecutorTest, IndexStreamScansFewerBytes) {
  TablePtr t = MakeMixedTable(5000, 13, false);
  ASSERT_TRUE(t->CreateIndex(ColumnSet{0}).ok());
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  ExecContext hctx, ictx;
  ASSERT_TRUE(QueryExecutor(&hctx)
                  .ExecuteGroupBy(*t, q, "h", AggStrategy::kHash)
                  .ok());
  ASSERT_TRUE(QueryExecutor(&ictx)
                  .ExecuteGroupBy(*t, q, "i", AggStrategy::kIndexStream)
                  .ok());
  EXPECT_LT(ictx.counters().bytes_scanned, hctx.counters().bytes_scanned);
}

TEST(QueryExecutorTest, IndexStreamWithoutIndexFails) {
  TablePtr t = MakeMixedTable(10, 1, false);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{3}, {AggregateSpec::CountStar()}};
  auto r = exec.ExecuteGroupBy(*t, q, "out", AggStrategy::kIndexStream);
  EXPECT_FALSE(r.ok());
}

TEST(QueryExecutorTest, StringAggregateRejected) {
  TablePtr t = MakeMixedTable(10, 1, false);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::Min(1, "m")}};  // col 1 = string
  auto r = exec.ExecuteGroupBy(*t, q, "out");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST(QueryExecutorTest, GroupIdExhaustionBecomesResourceExhausted) {
  // Regression: overflowing the uint32 group-id space used to wrap ids
  // silently. With the limit lowered for the test, a query producing more
  // groups than the id space must fail with ResourceExhausted — at any
  // parallelism, since worker-thread throws are rethrown on the caller.
  GroupHashTable::OverrideMaxGroupsForTest(4);
  TablePtr t = MakeMixedTable(2000, 31, /*with_nulls=*/false);
  for (int parallelism : {1, 4}) {
    ExecContext ctx;
    QueryExecutor exec(&ctx, ScanMode::kRowStore, parallelism);
    GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
    auto r = exec.ExecuteGroupBy(*t, q, "out", AggStrategy::kHash);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  }
  GroupHashTable::OverrideMaxGroupsForTest(0);
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0, 1}, {AggregateSpec::CountStar()}};
  EXPECT_TRUE(exec.ExecuteGroupBy(*t, q, "out", AggStrategy::kHash).ok());
}

TEST(QueryExecutorTest, AutoPicksIndexWhenAvailable) {
  TablePtr t = MakeMixedTable(1000, 29, false);
  ASSERT_TRUE(t->CreateIndex(ColumnSet{0}).ok());
  ExecContext ctx;
  QueryExecutor exec(&ctx);
  GroupByQuery q{ColumnSet{0}, {AggregateSpec::CountStar()}};
  ASSERT_TRUE(exec.ExecuteGroupBy(*t, q, "out").ok());
  // Index stream performs no hash probes.
  EXPECT_EQ(ctx.counters().hash_probes, 0u);
}

}  // namespace
}  // namespace gbmqo
