#include "sql/grouping_sets_parser.h"

#include <gtest/gtest.h>

namespace gbmqo {
namespace {

Schema MakeSchema() {
  return Schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kInt64, false},
                 {"c", DataType::kInt64, false},
                 {"d", DataType::kInt64, false}});
}

TEST(ParserTest, BasicList) {
  auto r = ParseGroupingSets("(a), (b), (a, c)", MakeSchema());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].columns, ColumnSet{0});
  EXPECT_EQ((*r)[1].columns, ColumnSet{1});
  EXPECT_EQ((*r)[2].columns, (ColumnSet{0, 2}));
}

TEST(ParserTest, OuterWrapperAccepted) {
  auto r = ParseGroupingSets("((a), (b))", MakeSchema());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParserTest, WhitespaceTolerant) {
  auto r = ParseGroupingSets("  ( a ,  b ) ,(c)  ", MakeSchema());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].columns, (ColumnSet{0, 1}));
}

TEST(ParserTest, SingleShorthand) {
  auto r = ParseGroupingSets("SINGLE(a, b, d)", MakeSchema());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[2].columns, ColumnSet{3});
}

TEST(ParserTest, PairsShorthand) {
  auto r = ParseGroupingSets("pairs(a, b, c)", MakeSchema());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // C(3,2)
}

TEST(ParserTest, UnknownColumn) {
  auto r = ParseGroupingSets("(a), (zz)", MakeSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ParserTest, DuplicateColumnInSet) {
  EXPECT_FALSE(ParseGroupingSets("(a, a)", MakeSchema()).ok());
}

TEST(ParserTest, DuplicateSets) {
  EXPECT_FALSE(ParseGroupingSets("(a), (a)", MakeSchema()).ok());
}

TEST(ParserTest, EmptyAndMalformed) {
  EXPECT_FALSE(ParseGroupingSets("", MakeSchema()).ok());
  EXPECT_FALSE(ParseGroupingSets("()", MakeSchema()).ok());
  EXPECT_FALSE(ParseGroupingSets("(a", MakeSchema()).ok());
  EXPECT_FALSE(ParseGroupingSets("a, b", MakeSchema()).ok());
  EXPECT_FALSE(ParseGroupingSets("WAT(a)", MakeSchema()).ok());
}

}  // namespace
}  // namespace gbmqo
